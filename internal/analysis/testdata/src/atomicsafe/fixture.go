// Package asfixture seeds atomicsafe violations and a near-miss: a plain
// read of a CAS-managed word, a plain field multi-written next to an atomic
// one, and a 64-bit atomic field that 32-bit layout leaves misaligned.
package asfixture

import (
	"sync"
	"sync/atomic"
)

// flags is managed with fn-style atomics on the write side.
type flags struct {
	bits uint32
}

func (f *flags) set(b uint32) {
	for {
		old := atomic.LoadUint32(&f.bits)
		if atomic.CompareAndSwapUint32(&f.bits, old, old|b) {
			return
		}
	}
}

// readFast reads the CAS-managed word without synchronization: the seeded
// plain-access violation.
func (f *flags) readFast() uint32 {
	return f.bits
}

// queue pairs an atomic head with a plain cursor that two different
// functions write, with no mutex in sight: the multi-writer violation.
type queue struct {
	head   atomic.Uint64
	cursor int
}

func (q *queue) advance() {
	q.head.Add(1)
	q.cursor++
}

func (q *queue) reset() {
	q.cursor = 0
}

// ticker's 64-bit counter sits at offset 4 under 32-bit struct layout, so
// fn-style 64-bit atomics would fault on 386: the alignment violation.
type ticker struct {
	pad uint32
	seq uint64
}

func (t *ticker) tick() uint64 {
	return atomic.AddUint64(&t.seq, 1)
}

// guarded is the near-miss: the mutex explains the plain field, so the
// multi-writer rule stays quiet.
type guarded struct {
	mu   sync.Mutex
	live atomic.Bool
	v    int
}

func (g *guarded) incr() {
	g.mu.Lock()
	g.v++
	g.mu.Unlock()
}

func (g *guarded) zero() {
	g.mu.Lock()
	g.v = 0
	g.mu.Unlock()
}
