// Package sffixture seeds secretflow violations and near-misses. The deep
// leak routes an unsealed key through two intermediate calls before it hits
// a trace attribute, so only the interprocedural summary transfer can see it.
package sffixture

import (
	"fmt"

	"flicker/internal/pal"
	"flicker/internal/trace"
)

// LeakDeep unseals a key and hands it to record, which hands it to stamp,
// which writes it into a span attribute: the seeded violation, two calls
// deep. The defer discharges the scrub obligation but cannot unsay the leak.
func LeakDeep(env *pal.Env, sp *trace.Span, blob []byte) error {
	key, err := env.Unseal(blob)
	if err != nil {
		return err
	}
	defer clear(key)
	record(sp, key)
	return nil
}

func record(sp *trace.Span, key []byte) {
	stamp(sp, key)
}

func stamp(sp *trace.Span, key []byte) {
	sp.SetAttr("session.key", string(key))
}

// LogLeak prints the secret straight into the untrusted log: the direct
// violation.
func LogLeak(env *pal.Env, blob []byte) error {
	key, err := env.Unseal(blob)
	if err != nil {
		return err
	}
	defer clear(key)
	fmt.Printf("debug key=%x\n", key)
	return nil
}

// ForgetToScrub drops the unsealed key on the floor: it is neither zeroed,
// nor resealed, nor handed off, so the session exits with the secret still
// in memory. len() is a laundering read, not custody.
func ForgetToScrub(env *pal.Env, blob []byte) (int, error) {
	key, err := env.Unseal(blob)
	if err != nil {
		return 0, err
	}
	return len(key), nil
}

// SealedRoundTrip is the near-miss: the secret is resealed (custody) and
// the cleartext copy is zeroed before the session returns.
func SealedRoundTrip(env *pal.Env, blob []byte) ([]byte, error) {
	key, err := env.Unseal(blob)
	if err != nil {
		return nil, err
	}
	defer clear(key)
	return env.SealToSelf(key)
}
