// Package wtfixture seeds walltime violations inside the tracer's scope:
// span timestamps must come from an injected simtime-backed func and
// sampling must be a deterministic counter, never the host clock or
// math/rand.
package wtfixture

import (
	"math/rand" // want: banned import
	"time"
)

// stampSpan reads the host wall clock for a span timestamp: the seeded
// violation. Real spans take `now func() time.Duration` at construction.
func stampSpan() time.Duration {
	start := time.Now() // want: banned
	return time.Since(start)
}

// sampleCoinFlip decides sampling with math/rand — non-deterministic trace
// selection, flagged at the import above.
func sampleCoinFlip(rate float64) bool {
	return rand.Float64() < rate
}

// spanAt is the near-miss: the timebase arrives injected, and time is used
// only as a duration arithmetic type.
func spanAt(now func() time.Duration, skew time.Duration) time.Duration {
	return now() + skew
}
