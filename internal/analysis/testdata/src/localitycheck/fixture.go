// Package lcfixture seeds one localitycheck violation and one near-miss.
// It is loaded under a package path outside the SKINIT measurement path.
package lcfixture

import "flicker/internal/tpm"

// ForgeMeasurement references a locality-4 ordinal from outside the SKINIT
// path: the seeded violation (this is the PCR 17 forgery primitive).
func ForgeMeasurement() uint32 {
	return tpm.OrdHashStart // want: restricted
}

// DescribeOrdinal uses the tpm package's unrestricted surface — the
// near-miss.
func DescribeOrdinal(ord uint32) string {
	return tpm.OrdinalName(ord)
}
