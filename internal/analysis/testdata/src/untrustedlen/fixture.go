// Package ulfixture seeds one untrustedlen violation and one near-miss.
package ulfixture

import "encoding/binary"

// DecodeBad sizes an allocation straight from a wire-decoded count: the
// seeded violation.
func DecodeBad(b []byte) [][]byte {
	count := binary.BigEndian.Uint32(b)
	out := make([][]byte, 0, count) // want: unclamped
	return out
}

// DecodeClamped is the near-miss: the same decode, but the allocation is
// clamped against what the frame can actually hold.
func DecodeClamped(b []byte) [][]byte {
	count := binary.BigEndian.Uint32(b)
	out := make([][]byte, 0, min(int(count), len(b)/4))
	return out
}

// DecodeGuarded is a second near-miss: a comparison guard between the
// decode and the allocation sanitizes the count.
func DecodeGuarded(b []byte) []byte {
	n := binary.BigEndian.Uint16(b)
	if int(n) > len(b)-2 {
		return nil
	}
	return make([]byte, n)
}
