// Package wtfixture seeds one walltime violation and near-misses.
package wtfixture

import "time"

// Stamp reads the host wall clock: the seeded violation.
func Stamp() time.Duration {
	start := time.Now() // want: banned
	return time.Since(start)
}

// Hold uses time only for durations and timers, which is allowed — the
// near-miss.
func Hold(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

// Justified documents a deliberate wall-clock read; the directive
// suppresses the finding.
func Justified() time.Time {
	//flickervet:allow walltime(fixture exercises the suppression directive)
	return time.Now()
}
