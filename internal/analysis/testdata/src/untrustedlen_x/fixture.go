// Package ulxfixture seeds cross-function untrustedlen violations: the
// wire decode and the allocation live in different functions, connected
// only by the interprocedural summaries.
package ulxfixture

import "encoding/binary"

// alloc sizes a table from its caller's count; on its own it is innocent.
func alloc(n int) [][]byte {
	return make([][]byte, 0, n)
}

// DecodeBad passes a wire-decoded count to alloc unclamped: the seeded
// violation, one call deep.
func DecodeBad(b []byte) [][]byte {
	n := binary.BigEndian.Uint32(b)
	return alloc(int(n))
}

// readCount decodes a count from the frame head; its result carries the
// wire taint into whoever calls it.
func readCount(b []byte) int {
	return int(binary.BigEndian.Uint16(b))
}

// DecodeBadDeep gets the tainted count from one callee and sizes the
// allocation in another: decode and make are two calls apart.
func DecodeBadDeep(b []byte) [][]byte {
	return alloc(readCount(b))
}

// DecodeClamped is the near-miss: the count is clamped before the call, so
// the laundered value reaches alloc clean.
func DecodeClamped(b []byte) [][]byte {
	n := readCount(b)
	n = min(n, len(b)/2)
	return alloc(n)
}

// checkCount is a callee-side guard in the memory.checkRange style:
// branching on its parameter earns callers clamp credit at the call site
// (the rule that keeps env.ReadMem clean).
func checkCount(n, limit int) bool {
	if n < 0 || n > limit {
		return false
	}
	return true
}

// DecodeGuardedByCallee is the second near-miss: the guard lives in a
// callee, and the summary's paramClamp fact carries it back here.
func DecodeGuardedByCallee(b []byte) [][]byte {
	n := readCount(b)
	if !checkCount(n, len(b)/2) {
		return nil
	}
	return alloc(n)
}
