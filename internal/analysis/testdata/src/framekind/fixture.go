// Package fkfixture seeds framekind violations and a near-miss: dispatch
// switches over frame-kind constants that silently drop unknown kinds.
package fkfixture

import "errors"

type frame struct {
	kind byte
	body []byte
}

const (
	kindHello byte = iota + 1
	kindQuote
	kindRun
)

var errUnknownKind = errors.New("fkfixture: unknown frame kind")

// DispatchBad has no default arm at all: a frame with an unrecognized kind
// falls out of the switch as if it had been handled. The seeded violation.
func DispatchBad(f *frame) int {
	switch f.kind {
	case kindHello:
		return 1
	case kindQuote:
		return 2
	}
	return 0
}

// DispatchEmptyDefault has a default arm that swallows unknown kinds
// without failing over: the second violation.
func DispatchEmptyDefault(f *frame) int {
	switch f.kind {
	case kindHello:
		return len(f.body)
	default:
	}
	return 0
}

// DispatchGood is the near-miss: unknown kinds fail over with an error.
func DispatchGood(f *frame) (int, error) {
	switch f.kind {
	case kindHello:
		return 1, nil
	case kindRun:
		return 3, nil
	default:
		return 0, errUnknownKind
	}
}
