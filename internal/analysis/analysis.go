package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message states the violated invariant and the offending construct.
	Message string
	// Chain, when the finding crossed call boundaries, lists the callee
	// chain (funcIDs, outermost first) from the reported position down to
	// the sink.
	Chain []string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// //flickervet:allow directives.
	Name string
	// Doc is a one-line description for the catalog listing.
	Doc string
	// Scope reports whether the analyzer applies to a package import path.
	// Out-of-scope packages are skipped entirely.
	Scope func(pkgPath string) bool
	// NeedsInterp requests the interprocedural summary engine; Run builds
	// one Interp over every loaded package and shares it across passes.
	NeedsInterp bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) run.
type Pass struct {
	Analyzer *Analyzer
	Loader   *Loader
	Pkg      *Package
	// Interp is the shared interprocedural engine, non-nil when the
	// analyzer declares NeedsInterp.
	Interp *Interp

	diags *[]Diagnostic
}

// Fset returns the file set positioning the package.
func (p *Pass) Fset() *token.FileSet { return p.Loader.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportChain(pos, nil, format, args...)
}

// reportChain records a finding whose sink sits at the end of a callee
// chain (for the interprocedural analyzers).
func (p *Pass) reportChain(pos token.Pos, chain []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset().Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// All returns the flickervet analyzer catalog.
func All() []*Analyzer {
	return []*Analyzer{
		UntrustedLen,
		WallTime,
		ScrubPair,
		LocalityCheck,
		MetricHandle,
		SecretFlow,
		AtomicSafe,
		FrameKind,
	}
}

// Run executes the analyzers over the packages (each analyzer only where
// its scope matches), filters out findings suppressed by
// //flickervet:allow directives, and returns the rest sorted by position.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunReport(l, pkgs, analyzers)
	return diags
}

// RunReport is Run plus the machine-readable report: suppressed findings
// are kept (with their directive reasons) instead of dropped, and
// per-analyzer counts cover every analyzer that ran.
func RunReport(l *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *VetReport) {
	var interp *Interp
	for _, a := range analyzers {
		if a.NeedsInterp {
			// One engine for the whole run, over everything the loader has
			// seen, so summaries cross package (and fixture) boundaries.
			interp = NewInterp(l, l.Packages())
			break
		}
	}
	var diags []Diagnostic
	var suppressed []SuppressedDiagnostic
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		allows := collectAllows(l.Fset, pkg)
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			var got []Diagnostic
			pass := &Pass{Analyzer: a, Loader: l, Pkg: pkg, Interp: interp, diags: &got}
			a.Run(pass)
			for _, d := range got {
				if dir, ok := allows.match(d); ok {
					suppressed = append(suppressed, SuppressedDiagnostic{Diagnostic: d, Reason: dir.reason})
				} else {
					diags = append(diags, d)
				}
			}
		}
	}
	sortDiags(diags)
	sort.Slice(suppressed, func(i, j int) bool {
		return lessDiag(suppressed[i].Diagnostic, suppressed[j].Diagnostic)
	})
	return diags, buildReport(l.Module, analyzers, diags, suppressed)
}

// SuppressedDiagnostic is a finding silenced by an allow directive,
// retained for the report.
type SuppressedDiagnostic struct {
	Diagnostic
	// Reason is the justification recorded in the directive.
	Reason string
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool { return lessDiag(diags[i], diags[j]) })
}

func lessDiag(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}

// prefixScope builds a Scope function matching any of the given import
// paths, each matching itself and everything beneath it.
func prefixScope(paths ...string) func(string) bool {
	return func(pkg string) bool {
		for _, p := range paths {
			if pkg == p || strings.HasPrefix(pkg, p+"/") {
				return true
			}
		}
		return false
	}
}

// --- Directives -------------------------------------------------------------

// allowDirective is one parsed //flickervet:allow name(reason) comment.
type allowDirective struct {
	analyzer string
	reason   string
}

// allowSet maps file -> line -> directives on that line.
type allowSet map[string]map[int][]allowDirective

// directivePrefix introduces a flickervet suppression comment.
const directivePrefix = "//flickervet:allow"

// parseAllow parses one comment text into a directive, if it is one.
// Syntax: //flickervet:allow <analyzer>(<reason>). The reason is mandatory:
// a suppression without a recorded justification defeats the point.
func parseAllow(text string) (allowDirective, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return allowDirective{}, false
	}
	rest = strings.TrimSpace(rest)
	open := strings.IndexByte(rest, '(')
	if open <= 0 || !strings.HasSuffix(rest, ")") {
		return allowDirective{}, false
	}
	name := strings.TrimSpace(rest[:open])
	reason := strings.TrimSpace(rest[open+1 : len(rest)-1])
	if name == "" || reason == "" {
		return allowDirective{}, false
	}
	return allowDirective{analyzer: name, reason: reason}, true
}

// collectAllows gathers every allow directive in the package, keyed by the
// file and line the directive sits on.
func collectAllows(fset *token.FileSet, pkg *Package) allowSet {
	set := make(allowSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if set[pos.Filename] == nil {
					set[pos.Filename] = make(map[int][]allowDirective)
				}
				set[pos.Filename][pos.Line] = append(set[pos.Filename][pos.Line], d)
			}
		}
	}
	return set
}

// suppresses reports whether a directive on the diagnostic's line or the
// line immediately above it names the diagnostic's analyzer.
func (s allowSet) suppresses(d Diagnostic) bool {
	_, ok := s.match(d)
	return ok
}

// match returns the directive suppressing the diagnostic: one on its line
// or the line immediately above it naming its analyzer.
func (s allowSet) match(d Diagnostic) (allowDirective, bool) {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return allowDirective{}, false
	}
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, a := range lines[ln] {
			if a.analyzer == d.Analyzer {
				return a, true
			}
		}
	}
	return allowDirective{}, false
}

// --- Shared AST/type helpers ------------------------------------------------

// funcDeclOf maps every *types.Func defined in the package to its
// declaration, for analyzers that need to look inside called functions.
func funcDeclOf(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// calleeFunc resolves a call expression to the *types.Func it statically
// invokes, or nil for dynamic calls (function values, interface methods
// resolve to the interface method object).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgObject reports whether obj is the named object from the package with
// the given import path ("time", "flicker/internal/tpm", ...).
func isPkgObject(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}
