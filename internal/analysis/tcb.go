package analysis

// Static TCB accounting — the repo's analogue of the paper's Section 7.1
// measurement ("the TCB of an application using Flicker can be as few as
// 250 lines, plus the application's own logic"). For every PAL entry point
// in the module, flickervet -tcbreport computes the statically reachable
// function set and its line count, so "how much code runs inside the
// isolated session" is a number CI checks against a reviewed budget file
// instead of a claim that silently rots as hot-path optimizations pile
// code into internal/pal and internal/palcrypto.
//
// The call graph is conservative: every referenced function counts as
// reachable (function values included), and interface method calls expand
// to every module type implementing the interface (class-hierarchy
// analysis). Two deliberate refinements: the session-engine pseudo-entry
// does not expand the pal.PAL/BatchPAL interfaces — the PAL is the
// engine's *parameter*, exactly as the paper separates the Flicker
// infrastructure from each application's PAL — and CHA only admits
// implementing types the caller's package can name (its transitive import
// closure). A package cannot construct values of types it cannot import,
// and this module's layering never injects higher-layer values downward,
// so e.g. an error type defined in untrusted serving code does not
// inflate the measured closure of internal/core just because both
// satisfy the universe error interface.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// TCBReport is the serialized output of flickervet -tcbreport.
type TCBReport struct {
	// Module is the module path the report covers.
	Module string `json:"module"`
	// Entries holds one accounting per PAL entry point, sorted by name.
	Entries []TCBEntry `json:"entries"`
}

// TCBEntry is one PAL's (or the engine's) reachable-code accounting.
type TCBEntry struct {
	// PAL is the entry's name: the PAL's wire name where extractable
	// (ssh-auth, flicker-ca, rootkit-detector, boinc-factor), otherwise
	// pkg.Type. The session engine reports as "session-engine".
	PAL string `json:"pal"`
	// EntryPoints are the functions reachability starts from.
	EntryPoints []string `json:"entry_points"`
	// Functions is the size of the reachable module-function set.
	Functions int `json:"functions"`
	// Lines sums the source lines of every reachable function declaration
	// — the Section 7.1 quantity.
	Lines int `json:"lines"`
	// Packages breaks Lines down by package, the analogue of the paper's
	// Figure 6 module inventory.
	Packages map[string]TCBPackage `json:"packages"`
	// BudgetLines is the tracked budget, 0 when no budget file was given.
	BudgetLines int `json:"budget_lines,omitempty"`
}

// TCBPackage is one package's share of an entry's TCB.
type TCBPackage struct {
	Functions int `json:"functions"`
	Lines     int `json:"lines"`
}

// sessionEngineEntry names the infrastructure pseudo-entry.
const sessionEngineEntry = "session-engine"

// tcbGraph is the module-wide call graph: the shared declaration/type/CHA
// index (modIndex, also the summary engine's substrate — see summary.go)
// plus the reference edges the reachability walk follows.
type tcbGraph struct {
	*modIndex
	edges map[*types.Func][]*types.Func
}

// BuildTCBReport computes the per-PAL reachable-code accounting over the
// loaded module packages.
func BuildTCBReport(l *Loader, pkgs []*Package) (*TCBReport, error) {
	g := &tcbGraph{modIndex: newModIndex(l, pkgs)}
	g.edges = g.callEdges()

	palIface, batchIface, err := g.palInterfaces()
	if err != nil {
		return nil, err
	}

	rep := &TCBReport{Module: l.Module}
	for _, e := range g.findEntries(palIface, batchIface) {
		rep.Entries = append(rep.Entries, g.account(e, palIface, batchIface))
	}
	sort.Slice(rep.Entries, func(i, j int) bool { return rep.Entries[i].PAL < rep.Entries[j].PAL })
	return rep, nil
}

// palInterfaces resolves the pal.PAL and pal.BatchPAL interface types.
func (g *tcbGraph) palInterfaces() (palIface, batchIface *types.Interface, err error) {
	palPkg := g.l.Package(g.l.Module + "/internal/pal")
	if palPkg == nil || palPkg.Types == nil {
		return nil, nil, fmt.Errorf("analysis: %s/internal/pal not loaded", g.l.Module)
	}
	lookup := func(name string) (*types.Interface, error) {
		obj := palPkg.Types.Scope().Lookup(name)
		if obj == nil {
			return nil, fmt.Errorf("analysis: pal.%s not found", name)
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			return nil, fmt.Errorf("analysis: pal.%s is not an interface", name)
		}
		return iface, nil
	}
	if palIface, err = lookup("PAL"); err != nil {
		return nil, nil, err
	}
	if batchIface, err = lookup("BatchPAL"); err != nil {
		return nil, nil, err
	}
	return palIface, batchIface, nil
}

// tcbEntrySpec is one discovered entry before accounting.
type tcbEntrySpec struct {
	name    string
	entries []*types.Func
	// engine marks the session-engine pseudo-entry, which does not expand
	// the PAL interfaces.
	engine bool
}

// findEntries discovers PAL entry points: named app types implementing
// pal.PAL, pal.Func composite literals, and the session-engine pseudo-entry.
func (g *tcbGraph) findEntries(palIface, batchIface *types.Interface) []tcbEntrySpec {
	var specs []tcbEntrySpec
	appsPrefix := g.l.Module + "/internal/apps/"

	// Named PAL implementations in app packages.
	for _, named := range g.named {
		tn := named.Obj()
		if tn.Pkg() == nil || !strings.HasPrefix(tn.Pkg().Path(), appsPrefix) {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		recv := types.Type(named)
		if !types.Implements(recv, palIface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, palIface) {
				continue
			}
		}
		methods := []string{"Run"}
		if types.Implements(recv, batchIface) {
			methods = append(methods, "OpenBatch", "RunRequest", "CloseBatch")
		}
		var entries []*types.Func
		for _, m := range methods {
			obj, _, _ := types.LookupFieldOrMethod(recv, true, tn.Pkg(), m)
			if f, ok := obj.(*types.Func); ok && g.decls[f] != nil {
				entries = append(entries, f)
			}
		}
		if len(entries) == 0 {
			continue
		}
		name := g.palNameOf(recv, tn)
		specs = append(specs, tcbEntrySpec{name: name, entries: entries})
	}

	// pal.Func composite literals (adapter PALs) in app packages.
	for _, pkg := range g.pkgs {
		if pkg.Types == nil || !strings.HasPrefix(pkg.Path, appsPrefix) {
			continue
		}
		for _, f := range pkg.Files {
			var enclosing *types.Func
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok {
					enclosing, _ = pkg.Info.Defs[fd.Name].(*types.Func)
					return true
				}
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[cl]
				if !ok {
					return true
				}
				t := tv.Type
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				named, ok := t.(*types.Named)
				if !ok || named.Obj().Name() != "Func" || named.Obj().Pkg() == nil ||
					named.Obj().Pkg().Path() != g.l.Module+"/internal/pal" {
					return true
				}
				name := ""
				var entry *types.Func
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "PALName":
						// The value may be a literal or a named constant;
						// the type-checker folded both.
						if tv, ok := pkg.Info.Types[kv.Value]; ok && tv.Value != nil &&
							tv.Value.Kind() == constant.String {
							name = constant.StringVal(tv.Value)
						}
					case "Fn":
						switch fe := ast.Unparen(kv.Value).(type) {
						case *ast.Ident:
							entry, _ = pkg.Info.Uses[fe].(*types.Func)
						case *ast.SelectorExpr:
							entry, _ = pkg.Info.Uses[fe.Sel].(*types.Func)
						case *ast.FuncLit:
							// A literal body belongs to its enclosing
							// constructor; account from there.
							entry = enclosing
						}
					}
				}
				if entry == nil || g.decls[entry] == nil {
					return true
				}
				if name == "" {
					name = entry.Name()
				}
				specs = append(specs, tcbEntrySpec{name: name, entries: []*types.Func{entry}})
				return true
			})
		}
	}

	// The session engine: what the platform itself executes around a PAL.
	corePkg := g.l.Package(g.l.Module + "/internal/core")
	if corePkg != nil && corePkg.Types != nil {
		var entries []*types.Func
		if obj := corePkg.Types.Scope().Lookup("Platform"); obj != nil {
			recv := types.NewPointer(obj.Type())
			for _, m := range []string{"RunSession", "RunSessionConcurrent", "RunSessionBatch"} {
				o, _, _ := types.LookupFieldOrMethod(recv, true, corePkg.Types, m)
				if f, ok := o.(*types.Func); ok && g.decls[f] != nil {
					entries = append(entries, f)
				}
			}
		}
		if len(entries) > 0 {
			specs = append(specs, tcbEntrySpec{name: sessionEngineEntry, entries: entries, engine: true})
		}
	}

	// Deduplicate by name (two pal.Func literals may share a PALName).
	byName := make(map[string]*tcbEntrySpec)
	var order []string
	for _, s := range specs {
		if cur, ok := byName[s.name]; ok {
			cur.entries = append(cur.entries, s.entries...)
			continue
		}
		s := s
		byName[s.name] = &s
		order = append(order, s.name)
	}
	out := make([]tcbEntrySpec, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out
}

// palNameOf extracts the PAL's wire name from a trivial Name() method
// (single return of a string literal), falling back to pkg.Type.
func (g *tcbGraph) palNameOf(recv types.Type, tn *types.TypeName) string {
	fallback := tn.Pkg().Name() + "." + tn.Name()
	obj, _, _ := types.LookupFieldOrMethod(recv, true, tn.Pkg(), "Name")
	f, ok := obj.(*types.Func)
	if !ok {
		return fallback
	}
	decl := g.decls[f]
	if decl == nil || decl.Body == nil || len(decl.Body.List) != 1 {
		return fallback
	}
	ret, ok := decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return fallback
	}
	lit, ok := ret.Results[0].(*ast.BasicLit)
	if !ok {
		return fallback
	}
	if s, err := strconv.Unquote(lit.Value); err == nil {
		return s
	}
	return fallback
}

// account computes one entry's reachable set and line totals.
func (g *tcbGraph) account(spec tcbEntrySpec, palIface, batchIface *types.Interface) TCBEntry {
	reach := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), spec.entries...)
	for _, f := range queue {
		reach[f] = true
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, callee := range g.edges[f] {
			if reach[callee] {
				continue
			}
			if spec.engine && g.isPALMethod(callee, palIface, batchIface) {
				// The PAL is the engine's parameter, not its TCB.
				continue
			}
			reach[callee] = true
			queue = append(queue, callee)
		}
	}

	entry := TCBEntry{PAL: spec.name, Packages: make(map[string]TCBPackage)}
	for _, f := range spec.entries {
		entry.EntryPoints = append(entry.EntryPoints, funcID(f))
	}
	sort.Strings(entry.EntryPoints)
	for f := range reach {
		decl := g.decls[f]
		pkg := g.pkgOf[f]
		start := g.l.Fset.Position(decl.Pos()).Line
		end := g.l.Fset.Position(decl.End()).Line
		lines := end - start + 1
		entry.Functions++
		entry.Lines += lines
		pp := entry.Packages[pkg.Path]
		pp.Functions++
		pp.Lines += lines
		entry.Packages[pkg.Path] = pp
	}
	return entry
}

// isPALMethod reports whether f is a concrete implementation of a
// pal.PAL/pal.BatchPAL interface method (Run, OpenBatch, RunRequest,
// CloseBatch, Name, Code, ExtraCode) on a type implementing pal.PAL.
func (g *tcbGraph) isPALMethod(f *types.Func, palIface, batchIface *types.Interface) bool {
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	switch f.Name() {
	case "Run", "OpenBatch", "RunRequest", "CloseBatch", "Name", "Code", "ExtraCode":
	default:
		return false
	}
	return types.Implements(sig.Recv().Type(), palIface)
}

// funcID renders a stable human-readable function identifier:
// pkgpath.Func or pkgpath.(Recv).Method.
func funcID(f *types.Func) string {
	sig := f.Type().(*types.Signature)
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", pkg, named.Obj().Name(), f.Name())
		}
	}
	return pkg + "." + f.Name()
}

// --- Budgets ----------------------------------------------------------------

// TCBBudget is the tracked per-PAL line budget (tcb_budget.json).
type TCBBudget struct {
	// Comment documents the workflow for humans editing the file.
	Comment string `json:"comment,omitempty"`
	// Budgets maps entry name -> maximum reachable lines.
	Budgets map[string]int `json:"budgets"`
	// ForbiddenPackages lists package path prefixes that must never appear
	// in any PAL's reachable closure. Untrusted serving infrastructure
	// (the attestation fabric, HTTP surfaces) lives here: if a PAL can
	// reach it, the measured TCB silently absorbed the control plane.
	ForbiddenPackages []string `json:"forbidden_packages,omitempty"`
}

// LoadTCBBudget reads a budget file.
func LoadTCBBudget(path string) (*TCBBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b TCBBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", filepath.Base(path), err)
	}
	if b.Budgets == nil {
		return nil, fmt.Errorf("analysis: %s has no budgets object", filepath.Base(path))
	}
	return &b, nil
}

// CheckTCBBudget annotates the report with budgets and returns one error
// per violation: an entry over its budget, an entry with no budget (TCB
// growth must be a reviewed, deliberate act — new PALs get a budget line
// in the same PR), or a stale budget naming no current entry.
func CheckTCBBudget(rep *TCBReport, budget *TCBBudget) []error {
	var errs []error
	seen := make(map[string]bool)
	for i := range rep.Entries {
		e := &rep.Entries[i]
		seen[e.PAL] = true
		max, ok := budget.Budgets[e.PAL]
		if !ok {
			errs = append(errs, fmt.Errorf(
				"tcb: %q has no budget in tcb_budget.json; add one deliberately (currently %d lines)",
				e.PAL, e.Lines))
			continue
		}
		e.BudgetLines = max
		if e.Lines > max {
			errs = append(errs, fmt.Errorf(
				"tcb: %q reachable TCB is %d lines, over its %d-line budget; "+
					"shrink the closure or raise the budget in a reviewed change",
				e.PAL, e.Lines, max))
		}
		for pkg := range e.Packages {
			for _, forbidden := range budget.ForbiddenPackages {
				if pkg == forbidden || strings.HasPrefix(pkg, forbidden+"/") {
					errs = append(errs, fmt.Errorf(
						"tcb: %q reaches forbidden package %s (%d lines); "+
							"PAL-measured code must not depend on untrusted serving infrastructure",
						e.PAL, pkg, e.Packages[pkg].Lines))
				}
			}
		}
	}
	var stale []string
	for name := range budget.Budgets {
		if !seen[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		errs = append(errs, fmt.Errorf("tcb: budget entry %q matches no PAL in the module; remove it", name))
	}
	return errs
}
