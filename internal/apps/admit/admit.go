// Package admit is the attestation fabric's admission PAL. It lives
// outside internal/fabric deliberately: the PAL's body is *measured* code
// — its hash is what a controller's quote check pins — while the fabric
// package is untrusted serving infrastructure that tcb_budget.json
// forbids from any PAL's reachable closure. Keeping the two in separate
// packages lets flickervet enforce that boundary mechanically.
package admit

import "flicker/internal/pal"

// PALName is the wire name of the admission PAL.
const PALName = "fabric-admit"

// Reply is the admission PAL's deterministic output for a challenge
// nonce. Both sides compute it: the PAL produces it inside the session
// (so it is hashed into PCR 17), and the verifier folds it into the
// expected composite.
func Reply(nonce []byte) []byte {
	return append([]byte("fabric-admitted:"), nonce...)
}

// PAL returns the canonical admission PAL. A host built with different
// admission code produces a different PCR-17 launch measurement, and its
// quote fails verification.
func PAL() pal.PAL {
	return &pal.Func{
		PALName: PALName,
		Binary:  pal.DescriptorCode(PALName, "1.0", nil, nil),
		Fn:      run,
	}
}

func run(_ *pal.Env, input []byte) ([]byte, error) {
	return Reply(input), nil
}
