package distcomp

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/tpm"
)

// TestFleetOfClients runs a whole BOINC project: one server, several
// independent client platforms (each with its own TPM, kernel and AIK),
// all contributing attested units toward factoring one number — including
// one fully compromised client whose forged result the server rejects
// while still accepting its honest work.
func TestFleetOfClients(t *testing.T) {
	ca, err := attest.NewPrivacyCA([]byte("fleet-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1234577 * 2 * 3 has small divisors spread over the range.
	const n = 1234577 * 6
	srv := NewServer(n, 60000, 15000, ca.PublicKey())

	var clients []*Client
	for i := 0; i < 4; i++ {
		p, err := core.NewPlatform(core.PlatformConfig{Seed: fmt.Sprintf("fleet-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		tqd, err := attest.NewDaemon(p.OSTPM(), tpm.Digest{}, ca, fmt.Sprintf("volunteer-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, &Client{P: p, TQD: tqd, Slice: 100 * time.Millisecond})
	}

	// Round-robin the units over the fleet; client 2 is malicious and
	// tampers with every result before submitting.
	i := 0
	tampered, accepted := 0, 0
	retry := []State{}
	retryNonce := []tpm.Digest{}
	for {
		unit, nonce, ok := srv.NextUnit()
		if !ok {
			break
		}
		c := clients[i%len(clients)]
		i++
		res, err := c.ProcessUnit(unit, nonce)
		if err != nil {
			t.Fatal(err)
		}
		if i%len(clients) == 3 { // the malicious client
			res.LastOutput = append([]byte(nil), res.LastOutput...)
			res.LastOutput[len(res.LastOutput)-1] ^= 0xFF
			if err := srv.Submit(res); err == nil {
				t.Fatal("tampered fleet result accepted")
			}
			tampered++
			retry = append(retry, unit)
			retryNonce = append(retryNonce, nonce)
			continue
		}
		if err := srv.Submit(res); err != nil {
			t.Fatal(err)
		}
		accepted++
	}
	// Honest clients re-run the rejected units (the server's recovery).
	for j, unit := range retry {
		res, err := clients[0].ProcessUnit(unit, retryNonce[j])
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Submit(res); err != nil {
			t.Fatal(err)
		}
		accepted++
	}
	if tampered == 0 {
		t.Fatal("fixture never exercised the malicious client")
	}
	acc, rej := srv.Stats()
	if acc != accepted || rej != tampered {
		t.Fatalf("stats = %d/%d, want %d/%d", acc, rej, accepted, tampered)
	}
	if got := srv.Divisors(); !reflect.DeepEqual(got, []uint64{2, 3, 6}) {
		t.Fatalf("fleet divisors = %v, want [2 3 6]", got)
	}
}
