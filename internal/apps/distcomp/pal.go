package distcomp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"flicker/internal/pal"
	"flicker/internal/simtime"
)

// CostPerCandidate is the simulated CPU cost of one trial division. The
// paper's client "performs division on 1,500,000 possible factors" in a
// multi-second session (Section 7.5), putting a candidate at a handful of
// microseconds on the 2.2 GHz test machine.
const CostPerCandidate = 5 * time.Microsecond

// Request is the input to the factoring PAL for one session.
type Request struct {
	// Init starts a fresh unit: generate + seal the session key.
	Init bool
	// Unit is the work assignment (Init only).
	Unit State
	// SealedKey is the sealed 160-bit HMAC key (non-Init sessions).
	SealedKey []byte
	// Envelope is the MAC'd checkpoint from the previous session.
	Envelope []byte
	// WorkBudget caps this session's application work; the PAL yields
	// afterwards so the OS can multitask (Section 6.2: "it periodically
	// returns control to the untrusted OS").
	WorkBudget time.Duration
	// UseHWContext checkpoints state in the next-generation hardware's
	// protected context store instead of TPM sealed storage, eliminating
	// the per-session Unseal (the [19] extension). Requires a profile with
	// HWContextProtection.
	UseHWContext bool
}

// Response is the PAL's output.
type Response struct {
	SealedKey []byte
	Envelope  []byte
	Done      bool
}

// EncodeRequest flattens a request for the input page.
func EncodeRequest(r *Request) []byte {
	var out []byte
	flags := byte(0)
	if r.Init {
		flags |= 1
	}
	if r.UseHWContext {
		flags |= 2
	}
	out = append(out, flags)
	out = binary.BigEndian.AppendUint64(out, uint64(r.WorkBudget))
	st := r.Unit.Encode()
	out = binary.BigEndian.AppendUint32(out, uint32(len(st)))
	out = append(out, st...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.SealedKey)))
	out = append(out, r.SealedKey...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Envelope)))
	out = append(out, r.Envelope...)
	return out
}

// DecodeRequest parses EncodeRequest output.
func DecodeRequest(b []byte) (*Request, error) {
	if len(b) < 9 {
		return nil, errors.New("distcomp: truncated request")
	}
	r := &Request{
		Init:         b[0]&1 != 0,
		UseHWContext: b[0]&2 != 0,
		WorkBudget:   time.Duration(binary.BigEndian.Uint64(b[1:])),
	}
	b = b[9:]
	take := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, errors.New("distcomp: truncated request field")
		}
		n := binary.BigEndian.Uint32(b)
		if int(n) > len(b)-4 {
			return nil, errors.New("distcomp: request field overflow")
		}
		f := b[4 : 4+n]
		b = b[4+n:]
		return f, nil
	}
	st, err := take()
	if err != nil {
		return nil, err
	}
	if len(st) > 0 {
		s, err := DecodeState(st)
		if err != nil {
			return nil, err
		}
		r.Unit = *s
	}
	if r.SealedKey, err = take(); err != nil {
		return nil, err
	}
	if r.Envelope, err = take(); err != nil {
		return nil, err
	}
	return r, nil
}

// EncodeResponse flattens a response for the output page.
func EncodeResponse(r *Response) []byte {
	var out []byte
	if r.Done {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.SealedKey)))
	out = append(out, r.SealedKey...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Envelope)))
	out = append(out, r.Envelope...)
	return out
}

// DecodeResponse parses EncodeResponse output.
func DecodeResponse(b []byte) (*Response, error) {
	if len(b) < 1 {
		return nil, errors.New("distcomp: truncated response")
	}
	r := &Response{Done: b[0] == 1}
	b = b[1:]
	take := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, errors.New("distcomp: truncated response field")
		}
		n := binary.BigEndian.Uint32(b)
		if int(n) > len(b)-4 {
			return nil, errors.New("distcomp: response field overflow")
		}
		f := append([]byte(nil), b[4:4+n]...)
		b = b[4+n:]
		return f, nil
	}
	var err error
	if r.SealedKey, err = take(); err != nil {
		return nil, err
	}
	if r.Envelope, err = take(); err != nil {
		return nil, err
	}
	return r, nil
}

// palVersion pins the factoring PAL's measured identity.
const palVersion = "1.0-boinc-factor"

// NewFactorPAL builds the BOINC factoring PAL.
func NewFactorPAL() pal.PAL {
	return &pal.Func{
		PALName: "boinc-factor",
		Binary: pal.DescriptorCode("boinc-factor", palVersion,
			[]string{"TPM Driver", "TPM Utilities", "Crypto"}, nil),
		Fn: runFactor,
	}
}

func runFactor(env *pal.Env, input []byte) ([]byte, error) {
	req, err := DecodeRequest(input)
	if err != nil {
		return nil, err
	}
	if req.UseHWContext {
		return runFactorHWContext(env, req)
	}
	if req.Init {
		// "the very first invocation of the BOINC PAL generates a 160-bit
		// symmetric key based on randomness obtained from the TPM and uses
		// the TPM to seal the key so that no other code can access it."
		key, err := env.TPM.GetRandom(20)
		if err != nil {
			return nil, err
		}
		sealedKey, err := env.SealToSelf(key)
		if err != nil {
			return nil, err
		}
		st := req.Unit
		resp := &Response{
			SealedKey: sealedKey,
			Envelope:  Wrap(key, &st).EncodeEnvelope(),
			Done:      st.Done(),
		}
		return EncodeResponse(resp), nil
	}

	// Continuation: unseal the key and verify the checkpoint MAC.
	key, err := env.Unseal(req.SealedKey)
	if err != nil {
		return nil, fmt.Errorf("distcomp: unsealing session key: %w", err)
	}
	// The MAC key exists only to verify and re-wrap this checkpoint; zero
	// it before the session returns (only the sealed copy survives).
	defer clear(key)
	envlp, err := DecodeEnvelope(req.Envelope)
	if err != nil {
		return nil, err
	}
	st, err := Open(key, envlp)
	if err != nil {
		return nil, err
	}

	// Application work: trial division within the time budget.
	candidates := uint64(req.WorkBudget / CostPerCandidate)
	worked := uint64(0)
	for st.Next < st.Hi && worked < candidates {
		st.Step()
		worked++
	}
	env.ChargeCPU(simtime.Charge{
		Duration: time.Duration(worked) * CostPerCandidate,
		Label:    "app.work",
	})

	resp := &Response{
		SealedKey: req.SealedKey,
		Envelope:  Wrap(key, st).EncodeEnvelope(),
		Done:      st.Done(),
	}
	return EncodeResponse(resp), nil
}

// runFactorHWContext is the [19]-extension flow: state checkpoints live in
// the hardware-protected context store, keyed by the PAL identity, so no
// per-session TPM Unseal is needed. The MAC chain is unnecessary — the
// store itself is integrity- and secrecy-protected by the CPU.
func runFactorHWContext(env *pal.Env, req *Request) ([]byte, error) {
	if !env.HWContextAvailable() {
		return nil, fmt.Errorf("distcomp: hardware context store unavailable on this platform")
	}
	var st *State
	if req.Init {
		s := req.Unit
		st = &s
	} else {
		raw, err := env.FetchContext()
		if err != nil {
			return nil, err
		}
		var err2 error
		st, err2 = DecodeState(raw)
		if err2 != nil {
			return nil, err2
		}
		candidates := uint64(req.WorkBudget / CostPerCandidate)
		worked := uint64(0)
		for st.Next < st.Hi && worked < candidates {
			st.Step()
			worked++
		}
		env.ChargeCPU(simtime.Charge{
			Duration: time.Duration(worked) * CostPerCandidate,
			Label:    "app.work",
		})
	}
	if err := env.StashContext(st.Encode()); err != nil {
		return nil, err
	}
	// The envelope carries the cleartext state for the host to inspect;
	// its integrity is still proven by the session's output extend.
	return EncodeResponse(&Response{Envelope: st.Encode(), Done: st.Done()}), nil
}
