package distcomp

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

func newClient(t *testing.T, seed string) (*Client, *attest.PrivacyCA) {
	t.Helper()
	p, err := core.NewPlatform(core.PlatformConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := attest.NewPrivacyCA([]byte("dc-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	tqd, err := attest.NewDaemon(p.OSTPM(), tpm.Digest{}, ca, "worker-1")
	if err != nil {
		t.Fatal(err)
	}
	return &Client{P: p, TQD: tqd, Slice: 200 * time.Millisecond}, ca
}

func TestStateCodecRoundTrip(t *testing.T) {
	f := func(id, n, next, hi uint64, found []uint64) bool {
		s := &State{UnitID: id, N: n, Next: next, Hi: hi, Found: found}
		got, err := DecodeState(s.Encode())
		if err != nil {
			return false
		}
		if len(found) == 0 && len(got.Found) == 0 {
			got.Found, s.Found = nil, nil
		}
		return reflect.DeepEqual(s, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeState([]byte("junk")); err == nil {
		t.Fatal("junk state accepted")
	}
}

func TestEnvelopeMAC(t *testing.T) {
	key := []byte("0123456789abcdef0123")
	s := &State{UnitID: 1, N: 91, Next: 2, Hi: 10}
	env := Wrap(key, s)
	got, err := Open(key, env)
	if err != nil || got.N != 91 {
		t.Fatalf("open: %v", err)
	}
	// Tampered state: rejected.
	bad := *env
	bad.State = append([]byte(nil), env.State...)
	bad.State[len(bad.State)-1] ^= 1
	if _, err := Open(key, &bad); err == nil {
		t.Fatal("tampered state accepted")
	}
	// Wrong key: rejected.
	if _, err := Open([]byte("wrong-key-wrong-key-"), env); err == nil {
		t.Fatal("wrong key accepted")
	}
	// Envelope transport round trip.
	dec, err := DecodeEnvelope(env.EncodeEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(key, dec); err != nil {
		t.Fatal("round-tripped envelope failed MAC")
	}
}

func TestRequestResponseCodec(t *testing.T) {
	req := &Request{
		Init:       false,
		Unit:       State{UnitID: 7, N: 1234, Next: 2, Hi: 100},
		SealedKey:  []byte("sealed-key-blob"),
		Envelope:   []byte("envelope-bytes"),
		WorkBudget: 1500 * time.Millisecond,
	}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.WorkBudget != req.WorkBudget || string(got.SealedKey) != string(req.SealedKey) ||
		got.Unit.N != 1234 {
		t.Fatalf("request round trip: %+v", got)
	}
	resp := &Response{SealedKey: []byte("k"), Envelope: []byte("e"), Done: true}
	rgot, err := DecodeResponse(EncodeResponse(resp))
	if err != nil || !rgot.Done || string(rgot.SealedKey) != "k" {
		t.Fatalf("response round trip: %+v %v", rgot, err)
	}
	if _, err := DecodeRequest(nil); err == nil {
		t.Fatal("nil request accepted")
	}
	if _, err := DecodeResponse(nil); err == nil {
		t.Fatal("nil response accepted")
	}
}

func TestFactorUnitEndToEnd(t *testing.T) {
	c, ca := newClient(t, "dc-e2e")
	// 91 = 7 * 13; candidate range covers both.
	srv := NewServer(91, 20, 20, ca.PublicKey())
	unit, nonce, ok := srv.NextUnit()
	if !ok {
		t.Fatal("no unit")
	}
	res, err := c.ProcessUnit(unit, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions < 2 {
		t.Fatalf("unit finished in %d sessions; want init + work", res.Sessions)
	}
	if err := srv.Submit(res); err != nil {
		t.Fatal(err)
	}
	if got := srv.Divisors(); !reflect.DeepEqual(got, []uint64{7, 13}) {
		t.Fatalf("divisors = %v, want [7 13]", got)
	}
	acc, rej := srv.Stats()
	if acc != 1 || rej != 0 {
		t.Fatalf("stats = %d/%d", acc, rej)
	}
}

func TestMultiSessionStateChaining(t *testing.T) {
	c, ca := newClient(t, "dc-chain")
	c.Slice = 50 * time.Millisecond // 10k candidates per session
	srv := NewServer(1_000_003*2, 45_000, 45_000, ca.PublicKey())
	unit, nonce, _ := srv.NextUnit()
	res, err := c.ProcessUnit(unit, nonce)
	if err != nil {
		t.Fatal(err)
	}
	// 45k candidates at 10k/session: init + 5 work sessions.
	if res.Sessions != 6 {
		t.Fatalf("sessions = %d, want 6", res.Sessions)
	}
	if err := srv.Submit(res); err != nil {
		t.Fatal(err)
	}
	if got := srv.Divisors(); !reflect.DeepEqual(got, []uint64{2}) {
		t.Fatalf("divisors = %v", got)
	}
}

func TestTamperedResultRejected(t *testing.T) {
	c, ca := newClient(t, "dc-tamper")
	srv := NewServer(143, 20, 20, ca.PublicKey()) // 11 * 13
	unit, nonce, _ := srv.NextUnit()
	res, err := c.ProcessUnit(unit, nonce)
	if err != nil {
		t.Fatal(err)
	}
	// A malicious host rewrites the final output (claiming no divisors).
	resp, _ := DecodeResponse(res.LastOutput)
	st := &State{UnitID: unit.UnitID, N: unit.N, Next: unit.Hi, Hi: unit.Hi}
	fake := Wrap([]byte("attacker-key-material"), st)
	resp.Envelope = fake.EncodeEnvelope()
	res.LastOutput = EncodeResponse(resp)
	if err := srv.Submit(res); err == nil {
		t.Fatal("tampered result accepted")
	}
	_, rej := srv.Stats()
	if rej != 1 {
		t.Fatalf("rejected = %d", rej)
	}
}

func TestStaleNonceRejected(t *testing.T) {
	c, ca := newClient(t, "dc-stale")
	srv := NewServer(143, 40, 20, ca.PublicKey())
	unitA, nonceA, _ := srv.NextUnit()
	unitB, _, _ := srv.NextUnit()
	resA, err := c.ProcessUnit(unitA, nonceA)
	if err != nil {
		t.Fatal(err)
	}
	// Replay unit A's attestation for unit B.
	resA.UnitID = unitB.UnitID
	if err := srv.Submit(resA); err == nil {
		t.Fatal("cross-unit replay accepted")
	}
}

func TestTable4OverheadShape(t *testing.T) {
	// Table 4: with ~912 ms fixed overhead (SKINIT 14.3 + Unseal 898.3),
	// overhead fraction is ~47/30/18/10 % at 1/2/4/8 s of app work.
	c, _ := newClient(t, "dc-t4")
	overhead := SessionOverhead(c.P)
	ohMs := simtime.Millis(overhead)
	if ohMs < 905 || ohMs < 900 || ohMs > 925 {
		t.Fatalf("fixed overhead = %.1f ms, want ~912.6", ohMs)
	}
	for _, tc := range []struct {
		work time.Duration
		want float64 // paper's overhead percentage
	}{
		{time.Second, 47}, {2 * time.Second, 30}, {4 * time.Second, 18}, {8 * time.Second, 10},
	} {
		frac := 100 * float64(overhead) / float64(overhead+tc.work)
		if frac < tc.want-2 || frac > tc.want+2 {
			t.Errorf("work %v: overhead %.1f%%, paper says %.0f%%", tc.work, frac, tc.want)
		}
	}
}

func TestMeasuredSessionOverheadMatchesModel(t *testing.T) {
	// Run a real continuation session and check that its non-application
	// time is dominated by SKINIT + Unseal as Table 4 says.
	c, _ := newClient(t, "dc-measure")
	c.Slice = time.Second
	srv := NewServer(1_000_003*2, 250_000, 250_000, attestCAPub(t))
	unit, nonce, _ := srv.NextUnit()
	start := c.P.Clock.Now()
	res, err := c.ProcessUnit(unit, nonce)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	totals := c.P.Clock.TotalByLabel()
	_ = start
	unsealMs := simtime.Millis(totals["tpm.unseal"])
	// init session does no unseal; the work session does one: ~898.3 each.
	if unsealMs < 890 || unsealMs > 1800 {
		t.Fatalf("unseal total = %.1f ms", unsealMs)
	}
	appMs := simtime.Millis(totals["app.work"])
	if appMs < 1200 || appMs > 1300 { // 250k candidates at 5us = 1250 ms
		t.Fatalf("app work = %.1f ms, want 1250", appMs)
	}
}

func attestCAPub(t *testing.T) *palcrypto.RSAPublicKey {
	t.Helper()
	ca, err := attest.NewPrivacyCA([]byte("dc-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	return ca.PublicKey()
}

func TestFigure8Efficiencies(t *testing.T) {
	overhead := simtime.FromMillis(912.6)
	// Flicker efficiency grows with user latency...
	prev := -1.0
	for l := 1; l <= 10; l++ {
		e := FlickerEfficiency(time.Duration(l)*time.Second, overhead)
		if e <= prev {
			t.Fatalf("efficiency not increasing at %ds", l)
		}
		prev = e
	}
	// ...and at 2 s beats 3-way replication ("a two second user latency
	// allows a more efficient distributed application than replicating to
	// three or more machines").
	if FlickerEfficiency(2*time.Second, overhead) <= ReplicationEfficiency(3) {
		t.Fatal("2s Flicker does not beat 3-way replication")
	}
	// At very small latency, replication wins.
	if FlickerEfficiency(time.Second, overhead) > 0.6 {
		t.Fatal("1s efficiency implausibly high")
	}
	if FlickerEfficiency(500*time.Millisecond, overhead) > ReplicationEfficiency(7) {
		t.Fatal("0.5s Flicker should lose to 7-way replication")
	}
	// Degenerate inputs clamp.
	if FlickerEfficiency(0, overhead) != 0 || FlickerEfficiency(overhead/2, overhead) != 0 {
		t.Fatal("clamping broken")
	}
	if ReplicationEfficiency(0) != 0 {
		t.Fatal("k=0 should be 0")
	}
}

func TestReplicationBaseline(t *testing.T) {
	unit := State{UnitID: 1, N: 91, Next: 2, Hi: 20}
	divs, total := ReplicateUnit(unit, 3, nil)
	if !reflect.DeepEqual(divs, []uint64{7, 13}) {
		t.Fatalf("divisors = %v", divs)
	}
	if total != 3*18*CostPerCandidate {
		t.Fatalf("total work = %v", total)
	}
	// One lying replica is outvoted.
	divs, _ = ReplicateUnit(unit, 3, func(r int, found []uint64) []uint64 {
		if r == 0 {
			return nil
		}
		return found
	})
	if !reflect.DeepEqual(divs, []uint64{7, 13}) {
		t.Fatalf("majority vote failed: %v", divs)
	}
}

func TestPrimeCountApplication(t *testing.T) {
	// The same framework serves a second project: prime search. The unit's
	// AppID rides inside the MAC'd, attested state.
	c, ca := newClient(t, "dc-prime")
	srv := NewServer(1<<62, 100, 100, ca.PublicKey())
	srv.SetApp(AppPrimeCount)
	unit, nonce, _ := srv.NextUnit()
	if unit.App != AppPrimeCount {
		t.Fatalf("unit app = %d", unit.App)
	}
	res, err := c.ProcessUnit(unit, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(res); err != nil {
		t.Fatal(err)
	}
	// Primes in [2, 100).
	want := []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
		47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97}
	if got := srv.Divisors(); !reflect.DeepEqual(got, want) {
		t.Fatalf("primes = %v", got)
	}
}

func TestAppIDProtectedByMACChain(t *testing.T) {
	// Flipping the AppID in a checkpoint is a state tamper: the MAC fails.
	key := []byte("0123456789abcdef0123")
	s := &State{UnitID: 1, App: AppFactor, N: 91, Next: 2, Hi: 10}
	env := Wrap(key, s)
	tampered := append([]byte(nil), env.State...)
	tampered[len(stateMagic)] = byte(AppPrimeCount) // the app byte
	if _, err := Open(key, &SealedEnvelope{State: tampered, MAC: env.MAC}); err == nil {
		t.Fatal("app-id tamper not caught by the MAC")
	}
}

func TestStepSemantics(t *testing.T) {
	f := State{App: AppFactor, N: 21, Next: 2, Hi: 8}
	for !f.Done() {
		f.Step()
	}
	if !reflect.DeepEqual(f.Found, []uint64{3, 7}) {
		t.Fatalf("factor step found %v", f.Found)
	}
	p := State{App: AppPrimeCount, Next: 2, Hi: 12}
	for !p.Done() {
		p.Step()
	}
	if !reflect.DeepEqual(p.Found, []uint64{2, 3, 5, 7, 11}) {
		t.Fatalf("prime step found %v", p.Found)
	}
}
