// Package distcomp implements the paper's distributed-computing application
// (Section 6.2): a BOINC-style framework whose clients process work units
// inside Flicker sessions, so the server can trust a single client's result
// instead of replicating every unit to several machines.
//
// The example workload is the paper's own: "a simple distributed
// application ... that attempts to factor a large number by naively asking
// clients to test a range of numbers for potential divisors."
//
// State integrity across sessions follows Section 6.2 exactly: the first
// invocation generates a 160-bit symmetric key from TPM randomness and
// seals it to the PAL; every subsequent invocation unseals the key, checks
// an HMAC over the inbound state, works for its time slice, and MACs the
// outbound state.
package distcomp

import (
	"encoding/binary"
	"errors"

	"flicker/internal/palcrypto"
)

// AppID selects the application-specific work a unit performs. The paper
// targets the generic BOINC framework "rather than a specific application"
// so that every project can reuse the Flicker integration; the work-unit
// state carries the application id, which is covered by the MAC chain and
// the attestation like everything else.
type AppID uint8

// Supported applications.
const (
	// AppFactor is the paper's example: trial-division factoring of N.
	AppFactor AppID = 0
	// AppPrimeCount counts primes in the candidate range (a second
	// project sharing the same framework).
	AppPrimeCount AppID = 1
)

// State is a work unit's checkpoint between sessions.
type State struct {
	UnitID uint64
	App    AppID
	N      uint64 // application parameter (the number to factor; unused for prime counting)
	Next   uint64 // next candidate to test
	Hi     uint64 // exclusive end of this unit's candidate range
	Found  []uint64
}

// Step processes one candidate according to the unit's application and
// advances the cursor. It is the single work function both the sealed and
// hardware-context PAL flows share.
func (s *State) Step() {
	switch s.App {
	case AppPrimeCount:
		if isPrime(s.Next) {
			s.Found = append(s.Found, s.Next)
		}
	default: // AppFactor
		if s.Next > 1 && s.N%s.Next == 0 {
			s.Found = append(s.Found, s.Next)
		}
	}
	s.Next++
}

// isPrime is deterministic trial division (the candidate ranges in work
// units are small enough that this is the honest cost model).
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Done reports whether the unit's range is exhausted.
func (s *State) Done() bool { return s.Next >= s.Hi }

const stateMagic = "BOINCST1"

// Encode serializes the state (without MAC).
func (s *State) Encode() []byte {
	out := make([]byte, 0, len(stateMagic)+1+8*4+4+8*len(s.Found))
	out = append(out, stateMagic...)
	out = append(out, byte(s.App))
	out = binary.BigEndian.AppendUint64(out, s.UnitID)
	out = binary.BigEndian.AppendUint64(out, s.N)
	out = binary.BigEndian.AppendUint64(out, s.Next)
	out = binary.BigEndian.AppendUint64(out, s.Hi)
	out = binary.BigEndian.AppendUint32(out, uint32(len(s.Found)))
	for _, d := range s.Found {
		out = binary.BigEndian.AppendUint64(out, d)
	}
	return out
}

// DecodeState parses an Encode payload.
func DecodeState(b []byte) (*State, error) {
	if len(b) < len(stateMagic)+1+8*4+4 || string(b[:len(stateMagic)]) != stateMagic {
		return nil, errors.New("distcomp: malformed state")
	}
	b = b[len(stateMagic):]
	app := AppID(b[0])
	b = b[1:]
	s := &State{
		App:    app,
		UnitID: binary.BigEndian.Uint64(b[0:]),
		N:      binary.BigEndian.Uint64(b[8:]),
		Next:   binary.BigEndian.Uint64(b[16:]),
		Hi:     binary.BigEndian.Uint64(b[24:]),
	}
	n := binary.BigEndian.Uint32(b[32:])
	b = b[36:]
	if int(n) > len(b)/8 {
		return nil, errors.New("distcomp: divisor count overflows payload")
	}
	for i := 0; i < int(n); i++ {
		s.Found = append(s.Found, binary.BigEndian.Uint64(b[8*i:]))
	}
	return s, nil
}

// SealedEnvelope is state + MAC, safe to hand to the untrusted OS. The MAC
// key never leaves sealed storage.
type SealedEnvelope struct {
	State []byte
	MAC   [palcrypto.SHA1Size]byte
}

// Wrap MACs a state under the session key.
func Wrap(key []byte, s *State) *SealedEnvelope {
	enc := s.Encode()
	return &SealedEnvelope{State: enc, MAC: palcrypto.HMACSHA1(key, enc)}
}

// Open verifies the MAC and decodes the state.
func Open(key []byte, env *SealedEnvelope) (*State, error) {
	want := palcrypto.HMACSHA1(key, env.State)
	if !palcrypto.ConstantTimeEqual(want[:], env.MAC[:]) {
		return nil, errors.New("distcomp: state MAC verification failed (tampered checkpoint)")
	}
	return DecodeState(env.State)
}

// EncodeEnvelope flattens an envelope for transport.
func (e *SealedEnvelope) EncodeEnvelope() []byte {
	out := make([]byte, 0, 4+len(e.State)+len(e.MAC))
	out = binary.BigEndian.AppendUint32(out, uint32(len(e.State)))
	out = append(out, e.State...)
	out = append(out, e.MAC[:]...)
	return out
}

// DecodeEnvelope parses EncodeEnvelope output.
func DecodeEnvelope(b []byte) (*SealedEnvelope, error) {
	if len(b) < 4 {
		return nil, errors.New("distcomp: truncated envelope")
	}
	n := binary.BigEndian.Uint32(b)
	if int(n)+4+palcrypto.SHA1Size != len(b) {
		return nil, errors.New("distcomp: envelope length mismatch")
	}
	e := &SealedEnvelope{State: append([]byte(nil), b[4:4+n]...)}
	copy(e.MAC[:], b[4+n:])
	return e, nil
}
