package distcomp

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/palcrypto"
	"flicker/internal/tpm"
)

// Server is the BOINC-style project server: it hands out work units and
// accepts results. With Flicker clients it verifies one attestation per
// unit instead of replicating the unit across machines ("The server then
// has a high degree of confidence in the results and need not waste
// computation on redundant work units").
type Server struct {
	mu     sync.Mutex
	app    AppID
	n      uint64
	chunk  uint64
	nextLo uint64
	limit  uint64

	caPub     *palcrypto.RSAPublicKey
	nonceSeed []byte
	nonceCtr  uint64
	issued    map[uint64]tpm.Digest // unitID -> nonce

	divisors map[uint64]bool
	accepted int
	rejected int
}

// NewServer creates a server factoring n over candidate range [2, limit),
// split into units of the given chunk size.
func NewServer(n, limit, chunk uint64, caPub *palcrypto.RSAPublicKey) *Server {
	if limit > n {
		limit = n
	}
	return &Server{
		n: n, chunk: chunk, nextLo: 2, limit: limit, app: AppFactor,
		caPub:     caPub,
		nonceSeed: []byte("distcomp-server"),
		issued:    make(map[uint64]tpm.Digest),
		divisors:  make(map[uint64]bool),
	}
}

// NextUnit issues the next work unit and its freshness nonce.
func (s *Server) NextUnit() (State, tpm.Digest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nextLo >= s.limit {
		return State{}, tpm.Digest{}, false
	}
	lo := s.nextLo
	hi := lo + s.chunk
	if hi > s.limit {
		hi = s.limit
	}
	s.nextLo = hi
	s.nonceCtr++
	id := s.nonceCtr
	nonce := palcrypto.SHA1Sum(append(s.nonceSeed,
		byte(id), byte(id>>8), byte(id>>16), byte(id>>24)))
	s.issued[id] = nonce
	return State{UnitID: id, App: s.app, N: s.n, Next: lo, Hi: hi}, nonce, true
}

// SetApp switches the project's application (the same framework serves
// factoring, prime counting, and any other AppID).
func (s *Server) SetApp(app AppID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.app = app
}

// UnitResult is a Flicker client's completed unit with its proof.
type UnitResult struct {
	UnitID uint64
	// LastInput and LastOutput are the final session's raw parameters.
	LastInput  []byte
	LastOutput []byte
	// SLBBase is where the client's flicker-module loads SLBs.
	SLBBase uint32
	// Attestation covers the final session's PCR 17.
	Attestation *attest.Attestation
	// Sessions counts the Flicker sessions the unit took.
	Sessions int
}

// Submit verifies a unit result and, if the attestation proves the genuine
// factoring PAL produced it, accepts its divisors.
func (s *Server) Submit(res *UnitResult) error {
	s.mu.Lock()
	nonce, ok := s.issued[res.UnitID]
	s.mu.Unlock()
	if !ok {
		return errors.New("distcomp: unknown unit")
	}
	im, err := core.BuildImage(NewFactorPAL(), true)
	if err != nil {
		return err
	}
	if err := im.Patch(res.SLBBase); err != nil {
		return err
	}
	if err := attest.VerifySession(s.caPub, res.Attestation, nonce, im, res.LastInput, res.LastOutput); err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return fmt.Errorf("distcomp: result rejected: %w", err)
	}
	// The attested output is trustworthy; parse the final state out of it.
	resp, err := DecodeResponse(res.LastOutput)
	if err != nil {
		return err
	}
	if !resp.Done {
		return errors.New("distcomp: final session did not complete the unit")
	}
	env, err := DecodeEnvelope(resp.Envelope)
	if err != nil {
		return err
	}
	// The MAC key stays inside the PAL; the server trusts the state bytes
	// because the attestation covers the whole output.
	st, err := DecodeState(env.State)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range st.Found {
		s.divisors[d] = true
	}
	s.accepted++
	delete(s.issued, res.UnitID)
	return nil
}

// Divisors returns all accepted divisors in ascending order.
func (s *Server) Divisors() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.divisors))
	for d := range s.divisors {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats reports accepted/rejected unit counts.
func (s *Server) Stats() (accepted, rejected int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted, s.rejected
}
