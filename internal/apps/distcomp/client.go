package distcomp

import (
	"errors"
	"fmt"
	"time"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/tpm"
)

// Client is a Flicker-enabled BOINC client: it runs its assigned unit in a
// series of Flicker sessions, yielding to the OS between them ("an
// application may prefer to break up a long work segment into multiple
// Flicker sessions to allow the rest of the system time to operate,
// essentially multitasking with the OS").
type Client struct {
	P   *core.Platform
	TQD *attest.Daemon
	// Slice is the application work budget per session (Table 4's
	// "Application Work" parameter).
	Slice time.Duration
	// BetweenSessions, if set, runs while the OS has control between
	// sessions (e.g. p.Kernel.Run to let other processes make progress).
	BetweenSessions func()
}

// ProcessUnit runs one unit to completion and returns the proof-carrying
// result for the server.
func (c *Client) ProcessUnit(unit State, nonce tpm.Digest) (*UnitResult, error) {
	if c.Slice <= 0 {
		return nil, errors.New("distcomp: non-positive work slice")
	}
	palImpl := NewFactorPAL()
	sessions := 0
	runOnce := func(req *Request) (*Response, []byte, []byte, uint32, error) {
		in := EncodeRequest(req)
		res, err := c.P.RunSession(palImpl, core.SessionOptions{
			Input:    in,
			Nonce:    &nonce,
			TwoStage: true, // the paper uses the SKINIT optimization here
		})
		if err != nil {
			return nil, nil, nil, 0, err
		}
		if res.PALError != nil {
			return nil, nil, nil, 0, fmt.Errorf("distcomp: PAL: %w", res.PALError)
		}
		sessions++
		resp, err := DecodeResponse(res.Outputs)
		return resp, in, res.Outputs, res.SLBBase, err
	}

	// Init session: key generation + first checkpoint.
	resp, lastIn, lastOut, slbBase, err := runOnce(&Request{Init: true, Unit: unit})
	if err != nil {
		return nil, err
	}
	for !resp.Done {
		if c.BetweenSessions != nil {
			c.BetweenSessions()
		}
		resp, lastIn, lastOut, slbBase, err = runOnce(&Request{
			SealedKey:  resp.SealedKey,
			Envelope:   resp.Envelope,
			WorkBudget: c.Slice,
		})
		if err != nil {
			return nil, err
		}
	}
	att, err := c.TQD.Quote(nonce)
	if err != nil {
		return nil, err
	}
	return &UnitResult{
		UnitID:      unit.UnitID,
		LastInput:   lastIn,
		LastOutput:  lastOut,
		SLBBase:     slbBase,
		Attestation: att,
		Sessions:    sessions,
	}, nil
}

// SessionOverhead returns the fixed per-session cost of the factoring PAL
// under the given profile: SKINIT over the optimized stub plus the
// dominant TPM Unseal (Table 4's "SKINIT" and "Unseal" rows).
func SessionOverhead(p *core.Platform) time.Duration {
	im, err := core.BuildImage(NewFactorPAL(), true)
	if err != nil {
		return 0
	}
	return p.Profile.SkinitCost(im.MeasuredLen()) + p.Profile.TPMUnseal
}

// FlickerEfficiency is Figure 8's y-axis for the Flicker curve: the useful
// fraction of a session of total length userLatency whose fixed overhead is
// overhead. Negative values clamp to zero (sessions shorter than the
// overhead do no useful work).
func FlickerEfficiency(userLatency, overhead time.Duration) float64 {
	if userLatency <= 0 {
		return 0
	}
	e := float64(userLatency-overhead) / float64(userLatency)
	if e < 0 {
		return 0
	}
	return e
}

// ReplicationEfficiency is Figure 8's y-axis for k-way replication: every
// unit is computed k times, so at most 1/k of the fleet's cycles are
// useful, independent of latency.
func ReplicationEfficiency(k int) float64 {
	if k <= 0 {
		return 0
	}
	return 1 / float64(k)
}

// ReplicateUnit is the baseline the paper compares against: run the same
// unit on k untrusted clients with no Flicker protection and accept the
// majority result. It returns the agreed divisors and the total CPU time
// consumed across replicas (k times the single-client work).
func ReplicateUnit(unit State, k int, tamper func(replica int, found []uint64) []uint64) ([]uint64, time.Duration) {
	votes := make(map[string]int)
	results := make(map[string][]uint64)
	var total time.Duration
	for r := 0; r < k; r++ {
		var found []uint64
		for d := unit.Next; d < unit.Hi; d++ {
			if d > 1 && unit.N%d == 0 {
				found = append(found, d)
			}
		}
		total += time.Duration(unit.Hi-unit.Next) * CostPerCandidate
		if tamper != nil {
			found = tamper(r, found)
		}
		key := fmt.Sprint(found)
		votes[key]++
		results[key] = found
	}
	bestKey, best := "", 0
	for k2, v := range votes {
		if v > best {
			best, bestKey = v, k2
		}
	}
	return results[bestKey], total
}
