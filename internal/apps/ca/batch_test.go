package ca

import (
	"errors"
	"testing"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/sealed"
	"flicker/internal/tpm"
)

// newAuthorityNV builds an authority whose policy carries a replay-protection
// NV counter (Figure 4), mirroring the setup in TestReplayProtectedCADefeatsRollback.
func newAuthorityNV(t *testing.T, seed string) *Authority {
	t.Helper()
	p, err := core.NewPlatform(core.PlatformConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	const nvIdx = 0x00012000
	pol := &Policy{AllowedSuffixes: []string{".corp.example"}, ReplayNVIndex: nvIdx}
	base, err := p.Mod.AllocateSLB()
	if err != nil {
		t.Fatal(err)
	}
	im, err := core.BuildImage(NewCAPAL(pol), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Patch(base); err != nil {
		t.Fatal(err)
	}
	if err := sealed.DefineCounter(p.OSTPM(), tpm.Digest{}, nvIdx, attest.ExpectedLaunchPCR17(im)); err != nil {
		t.Fatal(err)
	}
	a := NewAuthority(p, pol)
	if err := a.Init(); err != nil {
		t.Fatal(err)
	}
	return a
}

// SignBatch: N certificates from ONE session, sequential serials, all
// verifiable, sealed database advanced once.
func TestSignBatch(t *testing.T) {
	a := newAuthority(t, "ca-batch", nil)
	csrs := []*CSR{
		testCSR("mail.corp.example"),
		testCSR("db.corp.example"),
		testCSR("web.corp.example"),
	}
	before := a.P.Stats().Sessions
	certs, errs, err := a.SignBatch(csrs)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.P.Stats().Sessions - before; got != 1 {
		t.Fatalf("SignBatch ran %d sessions for 3 CSRs, want 1", got)
	}
	for i, cert := range certs {
		if errs[i] != nil {
			t.Fatalf("CSR %d: %v", i, errs[i])
		}
		if cert.Serial != uint64(i+1) {
			t.Errorf("cert %d serial = %d, want %d (sequential)", i, cert.Serial, i+1)
		}
		if cert.Subject != csrs[i].Subject {
			t.Errorf("cert %d subject = %q", i, cert.Subject)
		}
		if err := a.Validate(cert); err != nil {
			t.Errorf("cert %d invalid: %v", i, err)
		}
	}
	// The database advanced: a later singleton Sign continues the serial
	// sequence, proving the batch trailer replaced the sealed DB.
	next, err := a.Sign(testCSR("extra.corp.example"))
	if err != nil {
		t.Fatal(err)
	}
	if next.Serial != 4 {
		t.Fatalf("post-batch serial = %d, want 4", next.Serial)
	}
	if got := len(a.Issued()); got != 4 {
		t.Fatalf("issued log has %d certs, want 4", got)
	}
}

// A mid-batch policy rejection fails only its own CSR; the batch still
// signs the rest and the database still reseals.
func TestSignBatchPolicyRejectIsolated(t *testing.T) {
	a := newAuthority(t, "ca-batch-rej", nil)
	certs, errs, err := a.SignBatch([]*CSR{
		testCSR("ok1.corp.example"),
		testCSR("evil.attacker.example"), // not under the allowed suffix
		testCSR("ok2.corp.example"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("allowed CSRs failed: %v, %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], ErrPolicyRejected) {
		t.Fatalf("rejected CSR err = %v, want ErrPolicyRejected", errs[1])
	}
	if certs[1] != nil {
		t.Fatal("rejected CSR produced a certificate")
	}
	// Serials skip nothing: the reject never consumed one.
	if certs[0].Serial != 1 || certs[2].Serial != 2 {
		t.Fatalf("serials = %d, %d; want 1, 2", certs[0].Serial, certs[2].Serial)
	}
	// The database survived and still signs.
	next, err := a.Sign(testCSR("later.corp.example"))
	if err != nil {
		t.Fatal(err)
	}
	if next.Serial != 3 {
		t.Fatalf("post-batch serial = %d, want 3", next.Serial)
	}
}

// Batched signing under the replay-protected (NV counter) database policy:
// the counter advances once per batch, and stale sealed DBs stay rejected.
func TestSignBatchReplayProtected(t *testing.T) {
	a := newAuthorityNV(t, "ca-batch-nv")
	stale := append([]byte(nil), a.sealedDB...)
	certs, errs, err := a.SignBatch([]*CSR{
		testCSR("a.corp.example"),
		testCSR("b.corp.example"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range certs {
		if errs[i] != nil {
			t.Fatalf("CSR %d: %v", i, errs[i])
		}
	}
	// Rolling back to the pre-batch database must fail: the NV counter
	// moved when the batch resealed.
	a.mu.Lock()
	a.sealedDB = stale
	a.mu.Unlock()
	if _, err := a.Sign(testCSR("c.corp.example")); err == nil {
		t.Fatal("stale pre-batch database accepted after a batch advanced the counter")
	}
}
