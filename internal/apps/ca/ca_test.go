package ca

import (
	"errors"
	"testing"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/palcrypto"
	"flicker/internal/sealed"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

func newAuthority(t *testing.T, seed string, pol *Policy) *Authority {
	t.Helper()
	p, err := core.NewPlatform(core.PlatformConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if pol == nil {
		pol = &Policy{AllowedSuffixes: []string{".corp.example"}}
	}
	a := NewAuthority(p, pol)
	if err := a.Init(); err != nil {
		t.Fatal(err)
	}
	return a
}

func testCSR(subject string) *CSR {
	key, _ := palcrypto.GenerateRSAKey(palcrypto.NewPRNG([]byte("req|"+subject)), 512)
	return &CSR{Subject: subject, PublicKey: palcrypto.MarshalPublicKey(&key.RSAPublicKey)}
}

func TestIssueAndValidate(t *testing.T) {
	a := newAuthority(t, "ca-t1", nil)
	cert, err := a.Sign(testCSR("mail.corp.example"))
	if err != nil {
		t.Fatal(err)
	}
	if cert.Subject != "mail.corp.example" || cert.Issuer != IssuerName {
		t.Fatalf("cert = %+v", cert)
	}
	if err := a.Validate(cert); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
	// Serials increase monotonically across sessions.
	cert2, err := a.Sign(testCSR("db.corp.example"))
	if err != nil {
		t.Fatal(err)
	}
	if cert2.Serial != cert.Serial+1 {
		t.Fatalf("serials %d then %d", cert.Serial, cert2.Serial)
	}
	if len(a.Issued()) != 2 {
		t.Fatal("issuance log wrong")
	}
}

func TestPolicyRejection(t *testing.T) {
	a := newAuthority(t, "ca-t2", nil)
	if _, err := a.Sign(testCSR("evil.attacker.example")); !errors.Is(err, ErrPolicyRejected) {
		t.Fatalf("err = %v, want policy rejection", err)
	}
	// Max-cert policy.
	capped := newAuthority(t, "ca-t3", &Policy{AllowedSuffixes: []string{".x"}, MaxCerts: 1})
	if _, err := capped.Sign(testCSR("a.x")); err != nil {
		t.Fatal(err)
	}
	if _, err := capped.Sign(testCSR("b.x")); !errors.Is(err, ErrPolicyRejected) {
		t.Fatalf("cap not enforced: %v", err)
	}
}

func TestTamperedCertificateRejected(t *testing.T) {
	a := newAuthority(t, "ca-t4", nil)
	cert, err := a.Sign(testCSR("web.corp.example"))
	if err != nil {
		t.Fatal(err)
	}
	bad := *cert
	bad.Subject = "other.corp.example"
	if err := a.Validate(&bad); err == nil {
		t.Fatal("subject-swapped cert validated")
	}
	bad2 := *cert
	bad2.Signature = append([]byte(nil), cert.Signature...)
	bad2.Signature[5] ^= 1
	if err := a.Validate(&bad2); err == nil {
		t.Fatal("signature-tampered cert validated")
	}
}

func TestRevocation(t *testing.T) {
	a := newAuthority(t, "ca-t5", nil)
	cert, _ := a.Sign(testCSR("vpn.corp.example"))
	if err := a.Validate(cert); err != nil {
		t.Fatal(err)
	}
	a.Revoke(cert.Serial)
	if err := a.Validate(cert); err == nil {
		t.Fatal("revoked cert validated")
	}
	if !a.Revoked(cert.Serial) || a.Revoked(999) {
		t.Fatal("revocation bookkeeping wrong")
	}
}

func TestStaleDatabaseStillSignsButSerialRepeats(t *testing.T) {
	// Without the replay-protected storage of Section 4.3.2, a malicious
	// OS can roll back the sealed DB; the PAL will then re-issue a serial.
	// This test documents the attack the sealed package exists to stop.
	a := newAuthority(t, "ca-t6", nil)
	a.mu.Lock()
	stale := append([]byte(nil), a.sealedDB...)
	a.mu.Unlock()
	c1, err := a.Sign(testCSR("one.corp.example"))
	if err != nil {
		t.Fatal(err)
	}
	// Roll back.
	a.mu.Lock()
	a.sealedDB = stale
	a.mu.Unlock()
	c2, err := a.Sign(testCSR("two.corp.example"))
	if err != nil {
		t.Fatal(err)
	}
	if c1.Serial != c2.Serial {
		t.Fatalf("expected duplicate serials under rollback, got %d and %d", c1.Serial, c2.Serial)
	}
}

func TestDifferentPolicyCannotUnsealDatabase(t *testing.T) {
	// The policy is part of the PAL's measured identity, so a CA PAL with
	// a loosened policy is a DIFFERENT PAL and cannot unseal the database.
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "ca-t7"})
	if err != nil {
		t.Fatal(err)
	}
	strict := NewAuthority(p, &Policy{AllowedSuffixes: []string{".corp.example"}})
	if err := strict.Init(); err != nil {
		t.Fatal(err)
	}
	// Attacker builds a permissive authority on the same platform reusing
	// the strict authority's sealed DB.
	loose := NewAuthority(p, &Policy{AllowedSuffixes: []string{""}}) // allow all
	loose.mu.Lock()
	loose.sealedDB = strict.sealedDB
	loose.pub = strict.pub
	loose.mu.Unlock()
	if _, err := loose.Sign(testCSR("evil.attacker.example")); err == nil {
		t.Fatal("loosened-policy PAL unsealed the strict CA's key")
	}
}

func TestCASignLatencyMatchesPaper(t *testing.T) {
	// Section 7.4.2: "the total time averaged 906.2 ms (again, mainly due
	// to the TPM's Unseal)" with the RSA signature at ~4.7 ms.
	a := newAuthority(t, "ca-t8", nil)
	before := a.P.Clock.Now()
	if _, err := a.Sign(testCSR("timed.corp.example")); err != nil {
		t.Fatal(err)
	}
	ms := simtime.Millis(a.P.Clock.Now() - before)
	if ms < 890 || ms > 960 {
		t.Fatalf("CA sign = %.1f ms, want ~906.2", ms)
	}
}

func TestPrivateKeyNeverInMemoryAfterSession(t *testing.T) {
	a := newAuthority(t, "ca-t9", nil)
	cert, err := a.Sign(testCSR("scan.corp.example"))
	if err != nil {
		t.Fatal(err)
	}
	_ = cert
	// The compromised OS scans physical memory for the private key
	// material (the marshaled key would contain the modulus bytes AND the
	// private exponent; search for any 64-byte window of D).
	// We cannot know D here (that is the point) — instead check that the
	// SLB window is zeroed.
	base := uint32(0)
	for _, c := range a.P.Clock.Charges() {
		_ = c
	}
	// The platform reuses one SLB base; fetch it via a fresh session.
	res, err := a.P.RunSession(NewCAPAL(a.policy), core.SessionOptions{Input: EncodeKeygen(), TwoStage: true})
	if err != nil {
		t.Fatal(err)
	}
	base = res.SLBBase
	mem, err := a.P.Machine.Mem.Read(base, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	// Post-session the window holds only the pristine measured image bytes
	// followed by zeros (the cleanup scrub). Every PAL-written byte — in
	// particular any private-key material — must be gone: a byte identical
	// to the public image is by definition not a secret.
	img := res.Image.Bytes()
	for i, b := range mem {
		want := byte(0)
		if i < len(img) {
			want = img[i]
		}
		if b != want {
			t.Fatalf("SLB window byte %d = %#x after session, want %#x (pristine image + zeros)", i, b, want)
		}
	}
}

func TestCertificateCodecRoundTrip(t *testing.T) {
	c := &Certificate{
		Serial:    42,
		Subject:   "svc.corp.example",
		PublicKey: []byte{1, 2, 3},
		Issuer:    IssuerName,
		Signature: []byte{9, 8, 7, 6},
	}
	got, err := DecodeCertificate(EncodeCertificate(c))
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial != 42 || got.Subject != c.Subject || string(got.Signature) != string(c.Signature) {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := DecodeCertificate([]byte{1}); err == nil {
		t.Fatal("truncated certificate accepted")
	}
}

func TestSignBeforeInitFails(t *testing.T) {
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "ca-t10"})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAuthority(p, &Policy{AllowedSuffixes: []string{".x"}})
	if _, err := a.Sign(testCSR("a.x")); err == nil {
		t.Fatal("sign before init accepted")
	}
	if err := a.Validate(&Certificate{}); err == nil {
		t.Fatal("validate before init accepted")
	}
}

func TestReplayProtectedCADefeatsRollback(t *testing.T) {
	// Section 4.3.2 applied to Section 6.3.2: with the Figure 4 counter,
	// the database-rollback attack of TestStaleDatabaseStillSigns... fails
	// and serials can never repeat.
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "ca-replay"})
	if err != nil {
		t.Fatal(err)
	}
	const nvIdx = 0x00012000
	pol := &Policy{AllowedSuffixes: []string{".corp.example"}, ReplayNVIndex: nvIdx}
	// Define the PCR-gated counter for THIS CA PAL's identity. The SLB
	// base is stable, so the launch identity is computable up front.
	base, err := p.Mod.AllocateSLB()
	if err != nil {
		t.Fatal(err)
	}
	im, err := core.BuildImage(NewCAPAL(pol), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Patch(base); err != nil {
		t.Fatal(err)
	}
	if err := sealed.DefineCounter(p.OSTPM(), tpm.Digest{}, nvIdx, attest.ExpectedLaunchPCR17(im)); err != nil {
		t.Fatal(err)
	}

	a := NewAuthority(p, pol)
	if err := a.Init(); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	stale := append([]byte(nil), a.sealedDB...)
	a.mu.Unlock()
	c1, err := a.Sign(testCSR("one.corp.example"))
	if err != nil {
		t.Fatal(err)
	}
	// Roll back the database — the attack from the unprotected CA.
	a.mu.Lock()
	a.sealedDB = stale
	a.mu.Unlock()
	if _, err := a.Sign(testCSR("two.corp.example")); err == nil {
		t.Fatal("rollback attack succeeded against the replay-protected CA")
	}
	// Restoring the CURRENT database resumes service with a fresh serial.
	a.mu.Lock()
	a.sealedDB = nil
	a.mu.Unlock()
	// Re-sign path needs the latest blob; fetch it from the failed state:
	// the authority kept `stale`, so re-init is the recovery path here.
	// Instead, verify the pre-rollback certificate is intact and unique.
	if err := a.Validate(c1); err != nil {
		t.Fatalf("pre-rollback certificate invalid: %v", err)
	}
}
