// Package ca implements the paper's Flicker-enhanced Certificate Authority
// (Section 6.3.2): "only a tiny piece of code ever has access to the CA's
// private signing key. Thus, the key will remain secure, even if all of the
// other software on the machine is compromised."
//
// One PAL session generates the 1024-bit signing keypair from TPM
// randomness and seals the private key under PCR 17. The second session
// takes a certificate signing request, unseals the key and the certificate
// database, applies the administrator's access-control policy, and — if
// approved — signs the certificate, updates and reseals the database, and
// outputs the signed certificate.
package ca

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/sealed"
	"flicker/internal/simtime"
)

// KeyBits is the CA signing key size (1024 in the paper).
const KeyBits = 1024

// Policy is the access-control policy on certificate creation, embedded in
// the PAL's measured identity so a verifier knows exactly which policy
// gated issuance.
type Policy struct {
	// AllowedSuffixes lists subject suffixes the CA will sign (e.g.
	// ".internal.example.com"). Empty means sign nothing.
	AllowedSuffixes []string
	// MaxCerts caps total issuance (0 = unlimited).
	MaxCerts int
	// ReplayNVIndex, when non-zero, stores the certificate database with
	// the replay-protected sealed storage of Section 4.3.2: a PCR-gated NV
	// counter at this index defeats database-rollback attacks (stale
	// sealed DBs are rejected, so serials can never repeat). The index is
	// part of the measured policy. The counter space must be defined with
	// sealed.DefineCounter before Init.
	ReplayNVIndex uint32
}

// Encode canonicalizes the policy for inclusion in the PAL descriptor.
func (p *Policy) Encode() []byte {
	return []byte(fmt.Sprintf("suffixes=%q;max=%d;nv=%d", p.AllowedSuffixes, p.MaxCerts, p.ReplayNVIndex))
}

// Allows applies the policy to a subject.
func (p *Policy) Allows(subject string, issuedSoFar int) bool {
	if p.MaxCerts > 0 && issuedSoFar >= p.MaxCerts {
		return false
	}
	for _, suf := range p.AllowedSuffixes {
		if strings.HasSuffix(subject, suf) {
			return true
		}
	}
	return false
}

// CSR is a certificate signing request.
type CSR struct {
	Subject   string
	PublicKey []byte // marshaled RSA public key of the requester
}

// Certificate is an issued certificate.
type Certificate struct {
	Serial    uint64
	Subject   string
	PublicKey []byte
	Issuer    string
	Signature []byte // CA signature over the TBS bytes
}

// tbs returns the to-be-signed byte string.
func tbs(serial uint64, subject string, pub []byte, issuer string) []byte {
	out := []byte("FLICKER-CERT|")
	out = binary.BigEndian.AppendUint64(out, serial)
	out = append(out, subject...)
	out = append(out, 0)
	out = append(out, pub...)
	out = append(out, 0)
	return append(out, issuer...)
}

// VerifyCertificate checks a certificate against the CA public key.
func VerifyCertificate(caPub *palcrypto.RSAPublicKey, c *Certificate) error {
	if c == nil {
		return errors.New("ca: nil certificate")
	}
	body := tbs(c.Serial, c.Subject, c.PublicKey, c.Issuer)
	if err := palcrypto.VerifyPKCS1SHA1(caPub, body, c.Signature); err != nil {
		return fmt.Errorf("ca: certificate signature invalid: %w", err)
	}
	return nil
}

// EncodeCertificate / DecodeCertificate move certificates across the PAL
// boundary.
func EncodeCertificate(c *Certificate) []byte {
	var out []byte
	out = binary.BigEndian.AppendUint64(out, c.Serial)
	for _, f := range [][]byte{[]byte(c.Subject), c.PublicKey, []byte(c.Issuer), c.Signature} {
		out = binary.BigEndian.AppendUint32(out, uint32(len(f)))
		out = append(out, f...)
	}
	return out
}

// DecodeCertificate parses EncodeCertificate output.
func DecodeCertificate(b []byte) (*Certificate, error) {
	if len(b) < 8 {
		return nil, errors.New("ca: truncated certificate")
	}
	c := &Certificate{Serial: binary.BigEndian.Uint64(b)}
	b = b[8:]
	fields := make([][]byte, 4)
	for i := range fields {
		if len(b) < 4 {
			return nil, errors.New("ca: truncated certificate field")
		}
		n := binary.BigEndian.Uint32(b)
		if int(n) > len(b)-4 {
			return nil, errors.New("ca: certificate field overflow")
		}
		fields[i] = append([]byte(nil), b[4:4+n]...)
		b = b[4+n:]
	}
	c.Subject = string(fields[0])
	c.PublicKey = fields[1]
	c.Issuer = string(fields[2])
	c.Signature = fields[3]
	return c, nil
}

// database is the CA's sealed state: the private key, serial counter, and
// issuance log.
type database struct {
	priv    []byte // marshaled private key
	serial  uint64
	entries []dbEntry
}

type dbEntry struct {
	serial  uint64
	subject string
}

func (d *database) encode() []byte {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, uint32(len(d.priv)))
	out = append(out, d.priv...)
	out = binary.BigEndian.AppendUint64(out, d.serial)
	out = binary.BigEndian.AppendUint32(out, uint32(len(d.entries)))
	for _, e := range d.entries {
		out = binary.BigEndian.AppendUint64(out, e.serial)
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.subject)))
		out = append(out, e.subject...)
	}
	return out
}

func decodeDatabase(b []byte) (*database, error) {
	if len(b) < 4 {
		return nil, errors.New("ca: truncated database")
	}
	n := binary.BigEndian.Uint32(b)
	if int(n) > len(b)-4 {
		return nil, errors.New("ca: database key overflow")
	}
	d := &database{priv: append([]byte(nil), b[4:4+n]...)}
	b = b[4+n:]
	if len(b) < 12 {
		return nil, errors.New("ca: truncated database header")
	}
	d.serial = binary.BigEndian.Uint64(b)
	cnt := binary.BigEndian.Uint32(b[8:])
	b = b[12:]
	for i := 0; i < int(cnt); i++ {
		if len(b) < 12 {
			return nil, errors.New("ca: truncated database entry")
		}
		e := dbEntry{serial: binary.BigEndian.Uint64(b)}
		sn := binary.BigEndian.Uint32(b[8:])
		if int(sn) > len(b)-12 {
			return nil, errors.New("ca: database entry overflow")
		}
		e.subject = string(b[12 : 12+sn])
		b = b[12+sn:]
		d.entries = append(d.entries, e)
	}
	return d, nil
}

// Modes for the CA PAL.
const (
	modeKeygen byte = 1
	modeSign   byte = 2
)

// IssuerName identifies this CA in issued certificates.
const IssuerName = "flicker-ca"

// NewCAPAL builds the CA PAL for a given policy. The policy bytes are part
// of the measured identity: changing the policy changes the PAL, and hence
// the PCR-17 value every sealed blob is bound to.
func NewCAPAL(policy *Policy) pal.PAL {
	pol := *policy
	return &pal.Func{
		PALName: "flicker-ca",
		Binary: pal.DescriptorCode("flicker-ca", "1.0",
			[]string{"TPM Driver", "TPM Utilities", "Crypto", "Memory Management", "Secure Channel"},
			policy.Encode()),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return runCA(env, &pol, input)
		},
	}
}

// EncodeKeygen builds the keygen-mode input.
func EncodeKeygen() []byte { return []byte{modeKeygen} }

// EncodeSign builds the sign-mode input: sealed DB + CSR.
func EncodeSign(sealedDB []byte, csr *CSR) []byte {
	out := []byte{modeSign}
	out = binary.BigEndian.AppendUint32(out, uint32(len(sealedDB)))
	out = append(out, sealedDB...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(csr.Subject)))
	out = append(out, csr.Subject...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(csr.PublicKey)))
	out = append(out, csr.PublicKey...)
	return out
}

func runCA(env *pal.Env, policy *Policy, input []byte) ([]byte, error) {
	if len(input) < 1 {
		return nil, errors.New("ca: empty input")
	}
	switch input[0] {
	case modeKeygen:
		env.ChargeCPU(simtime.Charge{Duration: env.Profile().RSAKeyGen1024, Label: "cpu.keygen"})
		key, err := palcrypto.GenerateRSAKey(env.RNG(), KeyBits)
		if err != nil {
			return nil, err
		}
		db := &database{priv: palcrypto.MarshalPrivateKey(key), serial: 1}
		sealedDB, err := sealDB(env, policy, db.encode())
		if err != nil {
			return nil, err
		}
		pub := palcrypto.MarshalPublicKey(&key.RSAPublicKey)
		var out []byte
		out = binary.BigEndian.AppendUint32(out, uint32(len(pub)))
		out = append(out, pub...)
		out = append(out, sealedDB...)
		return out, nil

	case modeSign:
		b := input[1:]
		take := func() ([]byte, error) {
			if len(b) < 4 {
				return nil, errors.New("ca: truncated sign input")
			}
			n := binary.BigEndian.Uint32(b)
			if int(n) > len(b)-4 {
				return nil, errors.New("ca: sign input overflow")
			}
			f := b[4 : 4+n]
			b = b[4+n:]
			return f, nil
		}
		sealedDB, err := take()
		if err != nil {
			return nil, err
		}
		subject, err := take()
		if err != nil {
			return nil, err
		}
		csrPub, err := take()
		if err != nil {
			return nil, err
		}
		raw, err := unsealDB(env, policy, sealedDB)
		if err != nil {
			return nil, fmt.Errorf("ca: unsealing database: %w", err)
		}
		db, err := decodeDatabase(raw)
		if err != nil {
			return nil, err
		}
		if !policy.Allows(string(subject), len(db.entries)) {
			return nil, fmt.Errorf("ca: policy rejects subject %q", subject)
		}
		key, err := palcrypto.UnmarshalPrivateKey(db.priv)
		if err != nil {
			return nil, err
		}
		cert := &Certificate{
			Serial:    db.serial,
			Subject:   string(subject),
			PublicKey: append([]byte(nil), csrPub...),
			Issuer:    IssuerName,
		}
		env.ChargeCPU(simtime.Charge{Duration: env.Profile().RSASign1024, Label: "cpu.rsasign"})
		sig, err := palcrypto.SignPKCS1SHA1(key, tbs(cert.Serial, cert.Subject, cert.PublicKey, cert.Issuer))
		if err != nil {
			return nil, err
		}
		cert.Signature = sig
		db.serial++
		db.entries = append(db.entries, dbEntry{serial: cert.Serial, subject: cert.Subject})
		newSealed, err := sealDB(env, policy, db.encode())
		if err != nil {
			return nil, err
		}
		certBytes := EncodeCertificate(cert)
		var out []byte
		out = binary.BigEndian.AppendUint32(out, uint32(len(certBytes)))
		out = append(out, certBytes...)
		out = append(out, newSealed...)
		return out, nil

	default:
		return nil, fmt.Errorf("ca: unknown mode %d", input[0])
	}
}

// DecodeKeygenOutput splits the keygen output into (public key, sealed DB).
func DecodeKeygenOutput(out []byte) (*palcrypto.RSAPublicKey, []byte, error) {
	if len(out) < 4 {
		return nil, nil, errors.New("ca: truncated keygen output")
	}
	n := binary.BigEndian.Uint32(out)
	if int(n) > len(out)-4 {
		return nil, nil, errors.New("ca: keygen output overflow")
	}
	pub, err := palcrypto.UnmarshalPublicKey(out[4 : 4+n])
	if err != nil {
		return nil, nil, err
	}
	return pub, append([]byte(nil), out[4+n:]...), nil
}

// DecodeSignOutput splits the sign output into (certificate, new sealed DB).
func DecodeSignOutput(out []byte) (*Certificate, []byte, error) {
	if len(out) < 4 {
		return nil, nil, errors.New("ca: truncated sign output")
	}
	n := binary.BigEndian.Uint32(out)
	if int(n) > len(out)-4 {
		return nil, nil, errors.New("ca: sign output overflow")
	}
	cert, err := DecodeCertificate(out[4 : 4+n])
	if err != nil {
		return nil, nil, err
	}
	return cert, append([]byte(nil), out[4+n:]...), nil
}

// sealDB seals the CA database, with Figure 4 replay protection when the
// policy names an NV counter index.
func sealDB(env *pal.Env, policy *Policy, data []byte) ([]byte, error) {
	if policy.ReplayNVIndex != 0 {
		return sealed.Seal(env, policy.ReplayNVIndex, data)
	}
	return env.SealToSelf(data)
}

// unsealDB is the matching open path; stale databases fail with
// sealed.ErrReplay under a replay-protected policy.
func unsealDB(env *pal.Env, policy *Policy, blob []byte) ([]byte, error) {
	if policy.ReplayNVIndex != 0 {
		return sealed.Unseal(env, policy.ReplayNVIndex, blob)
	}
	return env.Unseal(blob)
}
