// Package ca implements the paper's Flicker-enhanced Certificate Authority
// (Section 6.3.2): "only a tiny piece of code ever has access to the CA's
// private signing key. Thus, the key will remain secure, even if all of the
// other software on the machine is compromised."
//
// One PAL session generates the 1024-bit signing keypair from TPM
// randomness and seals the private key under PCR 17. The second session
// takes a certificate signing request, unseals the key and the certificate
// database, applies the administrator's access-control policy, and — if
// approved — signs the certificate, updates and reseals the database, and
// outputs the signed certificate.
package ca

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/sealed"
	"flicker/internal/simtime"
)

// KeyBits is the CA signing key size (1024 in the paper).
const KeyBits = 1024

// Policy is the access-control policy on certificate creation, embedded in
// the PAL's measured identity so a verifier knows exactly which policy
// gated issuance.
type Policy struct {
	// AllowedSuffixes lists subject suffixes the CA will sign (e.g.
	// ".internal.example.com"). Empty means sign nothing.
	AllowedSuffixes []string
	// MaxCerts caps total issuance (0 = unlimited).
	MaxCerts int
	// ReplayNVIndex, when non-zero, stores the certificate database with
	// the replay-protected sealed storage of Section 4.3.2: a PCR-gated NV
	// counter at this index defeats database-rollback attacks (stale
	// sealed DBs are rejected, so serials can never repeat). The index is
	// part of the measured policy. The counter space must be defined with
	// sealed.DefineCounter before Init.
	ReplayNVIndex uint32
}

// Encode canonicalizes the policy for inclusion in the PAL descriptor.
func (p *Policy) Encode() []byte {
	return []byte(fmt.Sprintf("suffixes=%q;max=%d;nv=%d", p.AllowedSuffixes, p.MaxCerts, p.ReplayNVIndex))
}

// Allows applies the policy to a subject.
func (p *Policy) Allows(subject string, issuedSoFar int) bool {
	if p.MaxCerts > 0 && issuedSoFar >= p.MaxCerts {
		return false
	}
	for _, suf := range p.AllowedSuffixes {
		if strings.HasSuffix(subject, suf) {
			return true
		}
	}
	return false
}

// CSR is a certificate signing request.
type CSR struct {
	Subject   string
	PublicKey []byte // marshaled RSA public key of the requester
}

// Certificate is an issued certificate.
type Certificate struct {
	Serial    uint64
	Subject   string
	PublicKey []byte
	Issuer    string
	Signature []byte // CA signature over the TBS bytes
}

// tbs returns the to-be-signed byte string.
func tbs(serial uint64, subject string, pub []byte, issuer string) []byte {
	out := []byte("FLICKER-CERT|")
	out = binary.BigEndian.AppendUint64(out, serial)
	out = append(out, subject...)
	out = append(out, 0)
	out = append(out, pub...)
	out = append(out, 0)
	return append(out, issuer...)
}

// VerifyCertificate checks a certificate against the CA public key.
func VerifyCertificate(caPub *palcrypto.RSAPublicKey, c *Certificate) error {
	if c == nil {
		return errors.New("ca: nil certificate")
	}
	body := tbs(c.Serial, c.Subject, c.PublicKey, c.Issuer)
	if err := palcrypto.VerifyPKCS1SHA1(caPub, body, c.Signature); err != nil {
		return fmt.Errorf("ca: certificate signature invalid: %w", err)
	}
	return nil
}

// EncodeCertificate / DecodeCertificate move certificates across the PAL
// boundary.
func EncodeCertificate(c *Certificate) []byte {
	var out []byte
	out = binary.BigEndian.AppendUint64(out, c.Serial)
	for _, f := range [][]byte{[]byte(c.Subject), c.PublicKey, []byte(c.Issuer), c.Signature} {
		out = binary.BigEndian.AppendUint32(out, uint32(len(f)))
		out = append(out, f...)
	}
	return out
}

// DecodeCertificate parses EncodeCertificate output.
func DecodeCertificate(b []byte) (*Certificate, error) {
	if len(b) < 8 {
		return nil, errors.New("ca: truncated certificate")
	}
	c := &Certificate{Serial: binary.BigEndian.Uint64(b)}
	b = b[8:]
	fields := make([][]byte, 4)
	for i := range fields {
		if len(b) < 4 {
			return nil, errors.New("ca: truncated certificate field")
		}
		n := binary.BigEndian.Uint32(b)
		if int(n) > len(b)-4 {
			return nil, errors.New("ca: certificate field overflow")
		}
		fields[i] = append([]byte(nil), b[4:4+n]...)
		b = b[4+n:]
	}
	c.Subject = string(fields[0])
	c.PublicKey = fields[1]
	c.Issuer = string(fields[2])
	c.Signature = fields[3]
	return c, nil
}

// database is the CA's sealed state: the private key, serial counter, and
// issuance log.
type database struct {
	priv    []byte // marshaled private key
	serial  uint64
	entries []dbEntry
}

type dbEntry struct {
	serial  uint64
	subject string
}

func (d *database) encode() []byte {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, uint32(len(d.priv)))
	out = append(out, d.priv...)
	out = binary.BigEndian.AppendUint64(out, d.serial)
	out = binary.BigEndian.AppendUint32(out, uint32(len(d.entries)))
	for _, e := range d.entries {
		out = binary.BigEndian.AppendUint64(out, e.serial)
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.subject)))
		out = append(out, e.subject...)
	}
	return out
}

func decodeDatabase(b []byte) (*database, error) {
	if len(b) < 4 {
		return nil, errors.New("ca: truncated database")
	}
	n := binary.BigEndian.Uint32(b)
	if int(n) > len(b)-4 {
		return nil, errors.New("ca: database key overflow")
	}
	d := &database{priv: append([]byte(nil), b[4:4+n]...)}
	b = b[4+n:]
	if len(b) < 12 {
		return nil, errors.New("ca: truncated database header")
	}
	d.serial = binary.BigEndian.Uint64(b)
	cnt := binary.BigEndian.Uint32(b[8:])
	b = b[12:]
	for i := 0; i < int(cnt); i++ {
		if len(b) < 12 {
			return nil, errors.New("ca: truncated database entry")
		}
		e := dbEntry{serial: binary.BigEndian.Uint64(b)}
		sn := binary.BigEndian.Uint32(b[8:])
		if int(sn) > len(b)-12 {
			return nil, errors.New("ca: database entry overflow")
		}
		e.subject = string(b[12 : 12+sn])
		b = b[12+sn:]
		d.entries = append(d.entries, e)
	}
	return d, nil
}

// Modes for the CA PAL.
const (
	modeKeygen byte = 1
	modeSign   byte = 2
)

// IssuerName identifies this CA in issued certificates.
const IssuerName = "flicker-ca"

// NewCAPAL builds the CA PAL for a given policy. The policy bytes are part
// of the measured identity: changing the policy changes the PAL, and hence
// the PCR-17 value every sealed blob is bound to. The PAL also implements
// the batch entry convention (pal.BatchPAL): a group of CSRs shares one
// session, the database is unsealed once at entry and resealed ONCE after
// the last signature (the batch trailer), preserving sealed-state
// monotonicity while paying the Seal/Unseal cost once per group.
func NewCAPAL(policy *Policy) pal.PAL {
	pol := *policy
	return &caPAL{policy: &pol}
}

// caPAL is the CA PAL: keygen/sign singleton sessions via Run, grouped
// signing via the BatchPAL methods.
type caPAL struct{ policy *Policy }

func (c *caPAL) Name() string { return "flicker-ca" }

func (c *caPAL) Code() []byte {
	return pal.DescriptorCode("flicker-ca", "1.0",
		[]string{"TPM Driver", "TPM Utilities", "Crypto", "Memory Management", "Secure Channel"},
		c.policy.Encode())
}

func (c *caPAL) Run(env *pal.Env, input []byte) ([]byte, error) {
	return runCA(env, c.policy, input)
}

// caBatch is the in-session state of a signing group: the database decoded
// from the single unseal, mutated in place by each request.
type caBatch struct {
	db  *database
	key *palcrypto.RSAPrivateKey
}

// OpenBatch unseals and decodes the certificate database once for the whole
// group (the batch header is the sealed DB). An empty header means the
// group carries full singleton-format inputs (the pool coalescer's path);
// each request then pays its own unseal/reseal in RunRequest, identical to
// individual sessions.
func (c *caPAL) OpenBatch(env *pal.Env, header []byte, n int) (any, error) {
	if len(header) == 0 {
		return nil, nil
	}
	raw, err := unsealDB(env, c.policy, header)
	if err != nil {
		return nil, fmt.Errorf("ca: unsealing database: %w", err)
	}
	db, err := decodeDatabase(raw)
	if err != nil {
		return nil, err
	}
	key, err := palcrypto.UnmarshalPrivateKey(db.priv)
	if err != nil {
		return nil, err
	}
	return &caBatch{db: db, key: key}, nil
}

// RunRequest signs one CSR against the open database. A policy rejection is
// a request-level error: the remaining CSRs still execute and the database
// still reseals. The certificate bytes are the reply; the updated database
// leaves the session only once, as the batch trailer.
func (c *caPAL) RunRequest(env *pal.Env, bctx any, _ int, input []byte) ([]byte, error) {
	if bctx == nil {
		return runCA(env, c.policy, input)
	}
	b := bctx.(*caBatch)
	csr, err := DecodeBatchCSR(input)
	if err != nil {
		return nil, err
	}
	cert, err := signCSR(env, c.policy, b.db, b.key, csr)
	if err != nil {
		return nil, err
	}
	return EncodeCertificate(cert), nil
}

// CloseBatch reseals the database — once, after the last request.
func (c *caPAL) CloseBatch(env *pal.Env, bctx any) ([]byte, error) {
	if bctx == nil {
		return nil, nil
	}
	return sealDB(env, c.policy, bctx.(*caBatch).db.encode())
}

// EncodeKeygen builds the keygen-mode input.
func EncodeKeygen() []byte { return []byte{modeKeygen} }

// EncodeSign builds the sign-mode input: sealed DB + CSR.
func EncodeSign(sealedDB []byte, csr *CSR) []byte {
	out := []byte{modeSign}
	out = binary.BigEndian.AppendUint32(out, uint32(len(sealedDB)))
	out = append(out, sealedDB...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(csr.Subject)))
	out = append(out, csr.Subject...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(csr.PublicKey)))
	out = append(out, csr.PublicKey...)
	return out
}

func runCA(env *pal.Env, policy *Policy, input []byte) ([]byte, error) {
	if len(input) < 1 {
		return nil, errors.New("ca: empty input")
	}
	switch input[0] {
	case modeKeygen:
		env.ChargeCPU(simtime.Charge{Duration: env.Profile().RSAKeyGen1024, Label: "cpu.keygen"})
		key, err := palcrypto.GenerateRSAKey(env.RNG(), KeyBits)
		if err != nil {
			return nil, err
		}
		db := &database{priv: palcrypto.MarshalPrivateKey(key), serial: 1}
		sealedDB, err := sealDB(env, policy, db.encode())
		if err != nil {
			return nil, err
		}
		pub := palcrypto.MarshalPublicKey(&key.RSAPublicKey)
		var out []byte
		out = binary.BigEndian.AppendUint32(out, uint32(len(pub)))
		out = append(out, pub...)
		out = append(out, sealedDB...)
		return out, nil

	case modeSign:
		b := input[1:]
		take := func() ([]byte, error) {
			if len(b) < 4 {
				return nil, errors.New("ca: truncated sign input")
			}
			n := binary.BigEndian.Uint32(b)
			if int(n) > len(b)-4 {
				return nil, errors.New("ca: sign input overflow")
			}
			f := b[4 : 4+n]
			b = b[4+n:]
			return f, nil
		}
		sealedDB, err := take()
		if err != nil {
			return nil, err
		}
		subject, err := take()
		if err != nil {
			return nil, err
		}
		csrPub, err := take()
		if err != nil {
			return nil, err
		}
		raw, err := unsealDB(env, policy, sealedDB)
		if err != nil {
			return nil, fmt.Errorf("ca: unsealing database: %w", err)
		}
		db, err := decodeDatabase(raw)
		if err != nil {
			return nil, err
		}
		key, err := palcrypto.UnmarshalPrivateKey(db.priv)
		if err != nil {
			return nil, err
		}
		// The issuing key exists only between unseal and reseal; wipe it
		// before the session returns to the untrusted OS.
		defer key.Zero()
		// The issued certificate is the PAL's public artifact: its fields
		// (serial, subject, issuance log position) come from the unsealed
		// database on purpose, and the signature is produced by the
		// declassifying palcrypto signing path — the private key itself
		// never reaches the TBS or certificate bytes.
		//flickervet:allow secretflow(certificate fields from the sealed DB are public by design; the key is wiped and only its signature is released)
		cert, err := signCSR(env, policy, db, key, &CSR{Subject: string(subject), PublicKey: csrPub})
		if err != nil {
			return nil, err
		}
		newSealed, err := sealDB(env, policy, db.encode())
		if err != nil {
			return nil, err
		}
		//flickervet:allow secretflow(the encoded certificate is the released artifact; see the issuance-path rationale above)
		certBytes := EncodeCertificate(cert)
		var out []byte
		//flickervet:allow secretflow(framing a public certificate plus resealed ciphertext; no raw secret bytes are present)
		out = binary.BigEndian.AppendUint32(out, uint32(len(certBytes)))
		out = append(out, certBytes...)
		out = append(out, newSealed...)
		return out, nil

	default:
		return nil, fmt.Errorf("ca: unknown mode %d", input[0])
	}
}

// signCSR applies the policy and, if allowed, issues the next certificate
// from the database, advancing the serial and the issuance log in place.
// Shared by the singleton path (one CSR between unseal and reseal) and the
// batch path (N CSRs between ONE unseal and ONE reseal).
func signCSR(env *pal.Env, policy *Policy, db *database, key *palcrypto.RSAPrivateKey, csr *CSR) (*Certificate, error) {
	if !policy.Allows(csr.Subject, len(db.entries)) {
		return nil, fmt.Errorf("ca: policy rejects subject %q", csr.Subject)
	}
	cert := &Certificate{
		Serial:    db.serial,
		Subject:   csr.Subject,
		PublicKey: append([]byte(nil), csr.PublicKey...),
		Issuer:    IssuerName,
	}
	env.ChargeCPU(simtime.Charge{Duration: env.Profile().RSASign1024, Label: "cpu.rsasign"})
	sig, err := palcrypto.SignPKCS1SHA1(key, tbs(cert.Serial, cert.Subject, cert.PublicKey, cert.Issuer))
	if err != nil {
		return nil, err
	}
	cert.Signature = sig
	db.serial++
	db.entries = append(db.entries, dbEntry{serial: cert.Serial, subject: cert.Subject})
	return cert, nil
}

// EncodeBatchCSR frames one CSR of a batched signing group (the sealed
// database travels once as the batch header).
func EncodeBatchCSR(csr *CSR) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(csr.Subject)))
	out = append(out, csr.Subject...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(csr.PublicKey)))
	return append(out, csr.PublicKey...)
}

// DecodeBatchCSR parses EncodeBatchCSR output.
func DecodeBatchCSR(b []byte) (*CSR, error) {
	take := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, errors.New("ca: truncated batch CSR")
		}
		n := binary.BigEndian.Uint32(b)
		if int(n) > len(b)-4 {
			return nil, errors.New("ca: batch CSR field overflow")
		}
		f := b[4 : 4+n]
		b = b[4+n:]
		return f, nil
	}
	subject, err := take()
	if err != nil {
		return nil, err
	}
	pub, err := take()
	if err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, errors.New("ca: trailing bytes after batch CSR")
	}
	return &CSR{Subject: string(subject), PublicKey: append([]byte(nil), pub...)}, nil
}

// DecodeKeygenOutput splits the keygen output into (public key, sealed DB).
func DecodeKeygenOutput(out []byte) (*palcrypto.RSAPublicKey, []byte, error) {
	if len(out) < 4 {
		return nil, nil, errors.New("ca: truncated keygen output")
	}
	n := binary.BigEndian.Uint32(out)
	if int(n) > len(out)-4 {
		return nil, nil, errors.New("ca: keygen output overflow")
	}
	pub, err := palcrypto.UnmarshalPublicKey(out[4 : 4+n])
	if err != nil {
		return nil, nil, err
	}
	return pub, append([]byte(nil), out[4+n:]...), nil
}

// DecodeSignOutput splits the sign output into (certificate, new sealed DB).
func DecodeSignOutput(out []byte) (*Certificate, []byte, error) {
	if len(out) < 4 {
		return nil, nil, errors.New("ca: truncated sign output")
	}
	n := binary.BigEndian.Uint32(out)
	if int(n) > len(out)-4 {
		return nil, nil, errors.New("ca: sign output overflow")
	}
	cert, err := DecodeCertificate(out[4 : 4+n])
	if err != nil {
		return nil, nil, err
	}
	return cert, append([]byte(nil), out[4+n:]...), nil
}

// sealDB seals the CA database, with Figure 4 replay protection when the
// policy names an NV counter index.
func sealDB(env *pal.Env, policy *Policy, data []byte) ([]byte, error) {
	if policy.ReplayNVIndex != 0 {
		return sealed.Seal(env, policy.ReplayNVIndex, data)
	}
	return env.SealToSelf(data)
}

// unsealDB is the matching open path; stale databases fail with
// sealed.ErrReplay under a replay-protected policy.
func unsealDB(env *pal.Env, policy *Policy, blob []byte) ([]byte, error) {
	if policy.ReplayNVIndex != 0 {
		return sealed.Unseal(env, policy.ReplayNVIndex, blob)
	}
	return env.Unseal(blob)
}
