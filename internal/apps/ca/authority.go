package ca

import (
	"errors"
	"fmt"
	"sync"

	"flicker/internal/core"
	"flicker/internal/palcrypto"
)

// Authority is the host-side CA service: it drives the PAL sessions, stores
// the sealed database between them, and maintains the revocation list ("any
// certificates incorrectly created can be revoked... revoking a CA's public
// key, as would be necessary if the private key were compromised, is a more
// heavyweight proposition").
type Authority struct {
	P      *core.Platform
	policy *Policy

	mu       sync.Mutex
	pub      *palcrypto.RSAPublicKey
	sealedDB []byte
	revoked  map[uint64]bool
	issued   []*Certificate
}

// NewAuthority wraps a platform as a CA with the given issuance policy.
func NewAuthority(p *core.Platform, policy *Policy) *Authority {
	return &Authority{P: p, policy: policy, revoked: make(map[uint64]bool)}
}

// Init runs the keygen PAL session; the public key becomes available and
// the private key exists only in sealed storage.
func (a *Authority) Init() error {
	res, err := a.P.RunSession(NewCAPAL(a.policy), core.SessionOptions{
		Input:    EncodeKeygen(),
		TwoStage: true,
	})
	if err != nil {
		return err
	}
	if res.PALError != nil {
		return fmt.Errorf("ca: keygen PAL: %w", res.PALError)
	}
	pub, sealedDB, err := DecodeKeygenOutput(res.Outputs)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.pub = pub
	a.sealedDB = sealedDB
	a.mu.Unlock()
	return nil
}

// PublicKey returns the CA verification key ("The public key is made
// generally available").
func (a *Authority) PublicKey() *palcrypto.RSAPublicKey {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pub
}

// ErrPolicyRejected is returned when the PAL's policy refuses a CSR.
var ErrPolicyRejected = errors.New("ca: certificate request rejected by policy")

// Sign runs the signing PAL session for a CSR.
func (a *Authority) Sign(csr *CSR) (*Certificate, error) {
	a.mu.Lock()
	sealedDB := a.sealedDB
	a.mu.Unlock()
	if sealedDB == nil {
		return nil, errors.New("ca: authority not initialized")
	}
	res, err := a.P.RunSession(NewCAPAL(a.policy), core.SessionOptions{
		Input:    EncodeSign(sealedDB, csr),
		TwoStage: true,
	})
	if err != nil {
		return nil, err
	}
	if res.PALError != nil {
		if IsPolicyError(res.PALError) {
			return nil, ErrPolicyRejected
		}
		return nil, fmt.Errorf("ca: sign PAL: %w", res.PALError)
	}
	cert, newSealed, err := DecodeSignOutput(res.Outputs)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.sealedDB = newSealed
	a.issued = append(a.issued, cert)
	a.mu.Unlock()
	return cert, nil
}

// IsPolicyError reports whether a PAL error is a policy rejection.
func IsPolicyError(err error) bool {
	return err != nil && contains(err.Error(), "policy rejects")
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Revoke marks a serial as revoked.
func (a *Authority) Revoke(serial uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.revoked[serial] = true
}

// Revoked reports whether a serial has been revoked.
func (a *Authority) Revoked(serial uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.revoked[serial]
}

// Validate checks a certificate's signature and revocation status against
// this authority.
func (a *Authority) Validate(cert *Certificate) error {
	pub := a.PublicKey()
	if pub == nil {
		return errors.New("ca: authority not initialized")
	}
	if err := VerifyCertificate(pub, cert); err != nil {
		return err
	}
	if a.Revoked(cert.Serial) {
		return fmt.Errorf("ca: certificate %d is revoked", cert.Serial)
	}
	return nil
}

// Issued returns the host-visible issuance log (the authoritative log lives
// in the sealed database).
func (a *Authority) Issued() []*Certificate {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*Certificate(nil), a.issued...)
}
