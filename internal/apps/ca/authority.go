package ca

import (
	"errors"
	"fmt"
	"sync"

	"flicker/internal/core"
	"flicker/internal/palcrypto"
)

// Authority is the host-side CA service: it drives the PAL sessions, stores
// the sealed database between them, and maintains the revocation list ("any
// certificates incorrectly created can be revoked... revoking a CA's public
// key, as would be necessary if the private key were compromised, is a more
// heavyweight proposition").
type Authority struct {
	P      *core.Platform
	policy *Policy

	mu       sync.Mutex
	pub      *palcrypto.RSAPublicKey
	sealedDB []byte
	revoked  map[uint64]bool
	issued   []*Certificate
}

// NewAuthority wraps a platform as a CA with the given issuance policy.
func NewAuthority(p *core.Platform, policy *Policy) *Authority {
	return &Authority{P: p, policy: policy, revoked: make(map[uint64]bool)}
}

// Init runs the keygen PAL session; the public key becomes available and
// the private key exists only in sealed storage.
func (a *Authority) Init() error {
	res, err := a.P.RunSession(NewCAPAL(a.policy), core.SessionOptions{
		Input:    EncodeKeygen(),
		TwoStage: true,
	})
	if err != nil {
		return err
	}
	if res.PALError != nil {
		return fmt.Errorf("ca: keygen PAL: %w", res.PALError)
	}
	pub, sealedDB, err := DecodeKeygenOutput(res.Outputs)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.pub = pub
	a.sealedDB = sealedDB
	a.mu.Unlock()
	return nil
}

// PublicKey returns the CA verification key ("The public key is made
// generally available").
func (a *Authority) PublicKey() *palcrypto.RSAPublicKey {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pub
}

// ErrPolicyRejected is returned when the PAL's policy refuses a CSR.
var ErrPolicyRejected = errors.New("ca: certificate request rejected by policy")

// Sign runs the signing PAL session for a CSR.
func (a *Authority) Sign(csr *CSR) (*Certificate, error) {
	a.mu.Lock()
	sealedDB := a.sealedDB
	a.mu.Unlock()
	if sealedDB == nil {
		return nil, errors.New("ca: authority not initialized")
	}
	res, err := a.P.RunSession(NewCAPAL(a.policy), core.SessionOptions{
		Input:    EncodeSign(sealedDB, csr),
		TwoStage: true,
	})
	if err != nil {
		return nil, err
	}
	if res.PALError != nil {
		if IsPolicyError(res.PALError) {
			return nil, ErrPolicyRejected
		}
		return nil, fmt.Errorf("ca: sign PAL: %w", res.PALError)
	}
	cert, newSealed, err := DecodeSignOutput(res.Outputs)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.sealedDB = newSealed
	a.issued = append(a.issued, cert)
	a.mu.Unlock()
	return cert, nil
}

// SignBatch runs ONE Flicker session for a group of CSRs: the database is
// unsealed once, each CSR costs one policy check and one signature, and the
// database reseals once after the last request (the batch trailer) — the
// paper's Section 7.4 amortization. The returned slices are parallel to
// csrs: certs[i] is non-nil exactly when errs[i] is nil. A policy rejection
// fails only its own CSR; the final error is the batch-level failure, if
// any (in which case the authority's sealed database is unchanged).
func (a *Authority) SignBatch(csrs []*CSR) (certs []*Certificate, errs []error, err error) {
	certs = make([]*Certificate, len(csrs))
	errs = make([]error, len(csrs))
	if len(csrs) == 0 {
		return certs, errs, nil
	}
	a.mu.Lock()
	sealedDB := a.sealedDB
	a.mu.Unlock()
	if sealedDB == nil {
		return nil, nil, errors.New("ca: authority not initialized")
	}
	reqs := make([][]byte, len(csrs))
	for i, csr := range csrs {
		reqs[i] = EncodeBatchCSR(csr)
	}
	br, err := a.P.RunSessionBatch(NewCAPAL(a.policy), core.Batch{Header: sealedDB, Requests: reqs},
		core.SessionOptions{TwoStage: true})
	if err != nil {
		return nil, nil, err
	}
	if br.Session.PALError != nil {
		return nil, nil, fmt.Errorf("ca: sign batch PAL: %w", br.Session.PALError)
	}
	issued := make([]*Certificate, 0, len(csrs))
	for i, r := range br.Replies {
		if r.Err != nil {
			if IsPolicyError(r.Err) {
				errs[i] = ErrPolicyRejected
			} else {
				errs[i] = r.Err
			}
			continue
		}
		cert, derr := DecodeCertificate(r.Output)
		if derr != nil {
			errs[i] = derr
			continue
		}
		certs[i] = cert
		issued = append(issued, cert)
	}
	a.mu.Lock()
	a.sealedDB = br.Trailer
	a.issued = append(a.issued, issued...)
	a.mu.Unlock()
	return certs, errs, nil
}

// IsPolicyError reports whether a PAL error is a policy rejection.
func IsPolicyError(err error) bool {
	return err != nil && contains(err.Error(), "policy rejects")
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Revoke marks a serial as revoked.
func (a *Authority) Revoke(serial uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.revoked[serial] = true
}

// Revoked reports whether a serial has been revoked.
func (a *Authority) Revoked(serial uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.revoked[serial]
}

// Validate checks a certificate's signature and revocation status against
// this authority.
func (a *Authority) Validate(cert *Certificate) error {
	pub := a.PublicKey()
	if pub == nil {
		return errors.New("ca: authority not initialized")
	}
	if err := VerifyCertificate(pub, cert); err != nil {
		return err
	}
	if a.Revoked(cert.Serial) {
		return fmt.Errorf("ca: certificate %d is revoked", cert.Serial)
	}
	return nil
}

// Issued returns the host-visible issuance log (the authoritative log lives
// in the sealed database).
func (a *Authority) Issued() []*Certificate {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*Certificate(nil), a.issued...)
}
