// Package sshauth implements the paper's SSH password-authentication
// application (Section 6.3.1, Figure 7). The goal: a user's cleartext
// password never exists on the server outside a Flicker session, and the
// client can verify that this was enforced, even if the server's OS is
// compromised.
//
// Two PALs run on the server:
//
//   - Setup PAL (first Flicker session): generates an RSA keypair inside
//     the session, seals the private key to itself, and outputs the public
//     key K_PAL. The attestation convinces the client that K_PAL's private
//     half is accessible only to this PAL under Flicker.
//   - Login PAL (second Flicker session): unseals the private key,
//     decrypts the client's {password, nonce} ciphertext, checks the
//     nonce, computes md5crypt(salt, password), and outputs only the hash
//     for comparison against /etc/passwd.
package sshauth

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

// Versions pin the PAL identities.
const (
	setupVersion = "1.0-ssh-setup"
	loginVersion = "1.0-ssh-login"
)

// sharedModules is the module footprint of the SSH PALs (everything but OS
// Protection, per Section 5.1.2's Secure Channel description).
var sharedModules = []string{"TPM Driver", "TPM Utilities", "Crypto", "Memory Management", "Secure Channel"}

// KeyBits is the channel keypair size (1024 in the paper's evaluation).
const KeyBits = 1024

// NewSSHPAL builds the SSH PAL.
//
// IMPORTANT: the login PAL must be the SAME PAL for sealed storage to flow
// (the private key is sealed to the PAL's measurement). The paper uses one
// SSH PAL with two entry modes; we do the same — the "setup" and "login"
// behaviors live in one PAL whose input selects the mode. The same PAL also
// implements the batch entry convention (pal.BatchPAL), so a group of login
// requests shares one session and one Unseal of the private key — the
// Section 7.3 amortization — without changing the measured identity the key
// is sealed to.
func NewSSHPAL() pal.PAL { return sshPAL{} }

// sshPAL is the SSH PAL: plain sessions via Run, batched logins via the
// BatchPAL methods.
type sshPAL struct{}

func (sshPAL) Name() string { return "ssh-auth" }

func (sshPAL) Code() []byte {
	return pal.DescriptorCode("ssh-auth", setupVersion+"+"+loginVersion, sharedModules, nil)
}

func (sshPAL) Run(env *pal.Env, input []byte) ([]byte, error) { return runSSH(env, input) }

// OpenBatch unseals the channel private key ONCE for the whole login group
// (the batch header is sdata). An empty header means the group carries
// full singleton-format requests (the pool coalescer's path); each then
// pays its own unseal inside RunRequest, which keeps semantics identical
// to individual sessions.
func (sshPAL) OpenBatch(env *pal.Env, header []byte, n int) (any, error) {
	if len(header) == 0 {
		return nil, nil
	}
	return pal.RecoverChannelKey(env, header)
}

// RunRequest performs one password check. With an open key (batched login
// mode) the input is the slim EncodeBatchLogin form; otherwise it is a full
// singleton input and runSSH handles it unchanged.
func (sshPAL) RunRequest(env *pal.Env, bctx any, _ int, input []byte) ([]byte, error) {
	if bctx == nil {
		return runSSH(env, input)
	}
	req, err := decodeBatchLogin(input)
	if err != nil {
		return nil, err
	}
	return loginWithKey(env, bctx.(*palcrypto.RSAPrivateKey), req.Ciphertext, req.Salt, req.Nonce)
}

// CloseBatch has nothing to reseal: the channel key is immutable state.
func (sshPAL) CloseBatch(*pal.Env, any) ([]byte, error) { return nil, nil }

// Request modes.
const (
	modeSetup byte = 1
	modeLogin byte = 2
)

// LoginRequest is the input to the login mode (Figure 7's
// "Server -> PAL: c, salt, sdata, nonce").
type LoginRequest struct {
	SData      []byte // sealed private key
	Ciphertext []byte // c = encrypt_KPAL({password, nonce})
	Salt       string
	Nonce      tpm.Digest
}

// EncodeSetup builds the setup-mode input.
func EncodeSetup() []byte { return []byte{modeSetup} }

// EncodeLogin builds the login-mode input.
func EncodeLogin(r *LoginRequest) []byte {
	out := []byte{modeLogin}
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.SData)))
	out = append(out, r.SData...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Ciphertext)))
	out = append(out, r.Ciphertext...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Salt)))
	out = append(out, r.Salt...)
	out = append(out, r.Nonce[:]...)
	return out
}

func decodeLogin(b []byte) (*LoginRequest, error) {
	r := &LoginRequest{}
	take := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, errors.New("sshauth: truncated login request")
		}
		n := binary.BigEndian.Uint32(b)
		if int(n) > len(b)-4 {
			return nil, errors.New("sshauth: login request field overflow")
		}
		f := b[4 : 4+n]
		b = b[4+n:]
		return f, nil
	}
	var err error
	if r.SData, err = take(); err != nil {
		return nil, err
	}
	if r.Ciphertext, err = take(); err != nil {
		return nil, err
	}
	salt, err := take()
	if err != nil {
		return nil, err
	}
	r.Salt = string(salt)
	if len(b) != tpm.DigestSize {
		return nil, errors.New("sshauth: missing nonce")
	}
	copy(r.Nonce[:], b)
	return r, nil
}

// EncodeBatchLogin builds one slim request of a batched login group: the
// sealed key travels once as the batch header, so each request carries only
// its own ciphertext, salt, and nonce.
func EncodeBatchLogin(ciphertext []byte, salt string, nonce tpm.Digest) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(ciphertext)))
	out = append(out, ciphertext...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(salt)))
	out = append(out, salt...)
	return append(out, nonce[:]...)
}

func decodeBatchLogin(b []byte) (*LoginRequest, error) {
	r := &LoginRequest{}
	take := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, errors.New("sshauth: truncated batch login request")
		}
		n := binary.BigEndian.Uint32(b)
		if int(n) > len(b)-4 {
			return nil, errors.New("sshauth: batch login request field overflow")
		}
		f := b[4 : 4+n]
		b = b[4+n:]
		return f, nil
	}
	var err error
	if r.Ciphertext, err = take(); err != nil {
		return nil, err
	}
	salt, err := take()
	if err != nil {
		return nil, err
	}
	r.Salt = string(salt)
	if len(b) != tpm.DigestSize {
		return nil, errors.New("sshauth: missing batch login nonce")
	}
	copy(r.Nonce[:], b)
	return r, nil
}

// EncryptPassword is the client-side step: c = encrypt_KPAL({password,
// nonce}) with PKCS#1 v1.5 ("We use PKCS1 encryption which is
// chosen-ciphertext-secure and nonmalleable").
func EncryptPassword(rng *palcrypto.PRNG, kpal *palcrypto.RSAPublicKey, password string, nonce tpm.Digest) ([]byte, error) {
	msg := append([]byte(password), nonce[:]...)
	return palcrypto.EncryptPKCS1(rng, kpal, msg)
}

func runSSH(env *pal.Env, input []byte) ([]byte, error) {
	if len(input) < 1 {
		return nil, errors.New("sshauth: empty input")
	}
	switch input[0] {
	case modeSetup:
		kp, err := pal.GenerateChannelKeypair(env, KeyBits)
		if err != nil {
			return nil, err
		}
		// Output: public key || sealed private key. Both become part of
		// the attested output, so the client knows K_PAL is genuine and
		// the OS knows what to store as sdata.
		pub := palcrypto.MarshalPublicKey(kp.Public)
		out := binary.BigEndian.AppendUint32(nil, uint32(len(pub)))
		out = append(out, pub...)
		out = append(out, kp.SealedPrivate...)
		return out, nil

	case modeLogin:
		req, err := decodeLogin(input[1:])
		if err != nil {
			return nil, err
		}
		// K_PAL^-1 <- unseal(sdata).
		key, err := pal.RecoverChannelKey(env, req.SData)
		if err != nil {
			return nil, err
		}
		return loginWithKey(env, key, req.Ciphertext, req.Salt, req.Nonce)

	default:
		return nil, fmt.Errorf("sshauth: unknown mode %d", input[0])
	}
}

// loginWithKey is the post-unseal half of a login: decrypt the ciphertext,
// check the nonce, and compute the md5crypt hash — the only bytes that
// leave the PAL. Shared by the singleton path (which unseals per session)
// and the batch path (which unseals once per group).
func loginWithKey(env *pal.Env, key *palcrypto.RSAPrivateKey, ciphertext []byte, salt string, wantNonce tpm.Digest) ([]byte, error) {
	// {password, nonce'} <- decrypt(c).
	env.ChargeCPU(simtime.Charge{Duration: env.Profile().RSADecrypt1024, Label: "cpu.rsadecrypt"})
	plain, err := palcrypto.DecryptPKCS1(key, ciphertext)
	if err != nil {
		return nil, errors.New("sshauth: channel decryption failed")
	}
	if len(plain) < tpm.DigestSize {
		return nil, errors.New("sshauth: malformed decrypted payload")
	}
	password := string(plain[:len(plain)-tpm.DigestSize])
	var nonce tpm.Digest
	copy(nonce[:], plain[len(plain)-tpm.DigestSize:])
	// "if (nonce' != nonce) then abort" — replay protection for the
	// well-behaved server.
	if nonce != wantNonce {
		return nil, errors.New("sshauth: nonce mismatch (replayed ciphertext)")
	}
	// hash <- md5crypt(salt, password); only the hash leaves the PAL.
	env.ChargeCPU(simtime.Charge{Duration: env.Profile().MD5CryptCost, Label: "cpu.md5crypt"})
	hash := palcrypto.MD5Crypt(password, salt)
	return []byte(hash), nil
}

// DecodeSetupOutput splits the setup PAL's output into (K_PAL, sdata).
func DecodeSetupOutput(out []byte) (*palcrypto.RSAPublicKey, []byte, error) {
	if len(out) < 4 {
		return nil, nil, errors.New("sshauth: truncated setup output")
	}
	n := binary.BigEndian.Uint32(out)
	if int(n) > len(out)-4 {
		return nil, nil, errors.New("sshauth: setup output overflow")
	}
	pub, err := palcrypto.UnmarshalPublicKey(out[4 : 4+n])
	if err != nil {
		return nil, nil, err
	}
	return pub, append([]byte(nil), out[4+n:]...), nil
}
