package sshauth

import (
	"errors"
	"testing"
)

// LoginBatch: N password checks in ONE Flicker session, with grant/deny
// decisions identical to N singleton Logins.
func TestLoginBatch(t *testing.T) {
	r := newRig(t)
	r.handshake(t)
	r.srv.AddUser("bob", "hunter2", "saltsalt")

	attempts := make([]LoginAttempt, 4)
	// alice: correct password.
	n0 := r.srv.FreshNonce()
	ct0, err := r.client.Encrypt("correct horse battery", n0)
	if err != nil {
		t.Fatal(err)
	}
	attempts[0] = LoginAttempt{User: "alice", Ciphertext: ct0, Nonce: n0}
	// bob: correct password.
	n1 := r.srv.FreshNonce()
	ct1, err := r.client.Encrypt("hunter2", n1)
	if err != nil {
		t.Fatal(err)
	}
	attempts[1] = LoginAttempt{User: "bob", Ciphertext: ct1, Nonce: n1}
	// alice: wrong password.
	n2 := r.srv.FreshNonce()
	ct2, err := r.client.Encrypt("wrong password", n2)
	if err != nil {
		t.Fatal(err)
	}
	attempts[2] = LoginAttempt{User: "alice", Ciphertext: ct2, Nonce: n2}
	// unknown user.
	n3 := r.srv.FreshNonce()
	ct3, err := r.client.Encrypt("whatever", n3)
	if err != nil {
		t.Fatal(err)
	}
	attempts[3] = LoginAttempt{User: "mallory", Ciphertext: ct3, Nonce: n3}

	before := r.p.Stats().Sessions
	errs := r.srv.LoginBatch(attempts)
	if got := r.p.Stats().Sessions - before; got != 1 {
		t.Fatalf("LoginBatch ran %d sessions for 4 attempts, want 1", got)
	}
	if errs[0] != nil {
		t.Errorf("alice (correct): %v", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("bob (correct): %v", errs[1])
	}
	if !errors.Is(errs[2], ErrLoginFailed) {
		t.Errorf("alice (wrong password) = %v, want ErrLoginFailed", errs[2])
	}
	if !errors.Is(errs[3], ErrLoginFailed) {
		t.Errorf("mallory (unknown) = %v, want ErrLoginFailed", errs[3])
	}

	// The batched decisions match singleton Login exactly.
	if err := r.srv.Login("alice", ct0, n0); err != nil {
		t.Errorf("singleton alice (correct): %v", err)
	}
	if err := r.srv.Login("alice", ct2, n2); !errors.Is(err, ErrLoginFailed) {
		t.Errorf("singleton alice (wrong) = %v, want ErrLoginFailed", err)
	}
}

// A replayed ciphertext (stale nonce) inside a batch fails only its own
// attempt.
func TestLoginBatchReplayIsolated(t *testing.T) {
	r := newRig(t)
	r.handshake(t)
	nonce := r.srv.FreshNonce()
	ct, err := r.client.Encrypt("correct horse battery", nonce)
	if err != nil {
		t.Fatal(err)
	}
	stale := r.srv.FreshNonce() // server expects this, ct carries the old one
	errs := r.srv.LoginBatch([]LoginAttempt{
		{User: "alice", Ciphertext: ct, Nonce: stale}, // replay
		{User: "alice", Ciphertext: ct, Nonce: nonce}, // honest
	})
	if !errors.Is(errs[0], ErrLoginFailed) {
		t.Errorf("replayed attempt = %v, want ErrLoginFailed", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("honest attempt alongside a replay: %v", errs[1])
	}
}
