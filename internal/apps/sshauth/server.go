package sshauth

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/palcrypto"
	"flicker/internal/tpm"
)

// PasswdEntry is one /etc/passwd line's crypt data.
type PasswdEntry struct {
	Salt   string
	Stored string // full "$1$salt$hash"
}

// Server is the modified sshd: it owns the password file, stores sdata
// between sessions, and drives the two Flicker sessions.
type Server struct {
	P   *core.Platform
	TQD *attest.Daemon

	mu     sync.Mutex
	passwd map[string]PasswdEntry
	kpal   *palcrypto.RSAPublicKey
	sdata  []byte
	nonceC uint64
}

// NewServer wraps a platform as an SSH server.
func NewServer(p *core.Platform, tqd *attest.Daemon) *Server {
	return &Server{P: p, TQD: tqd, passwd: make(map[string]PasswdEntry)}
}

// AddUser writes a user's md5crypt entry into the password file (run by the
// administrator out of band; the cleartext here never touches Flicker).
func (s *Server) AddUser(user, password, salt string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.passwd[user] = PasswdEntry{Salt: salt, Stored: palcrypto.MD5Crypt(password, salt)}
}

// SetupResult is what the client needs to trust K_PAL.
type SetupResult struct {
	KPAL        *palcrypto.RSAPublicKey
	Output      []byte // raw PAL output (pub || sdata), needed for verification
	SLBBase     uint32
	Attestation *attest.Attestation
}

// Setup runs the first Flicker session (Figure 9a) for a client challenge
// nonce and returns the public key plus the attestation.
func (s *Server) Setup(clientNonce tpm.Digest) (*SetupResult, error) {
	res, err := s.P.RunSession(NewSSHPAL(), core.SessionOptions{
		Input:    EncodeSetup(),
		Nonce:    &clientNonce,
		TwoStage: true,
	})
	if err != nil {
		return nil, err
	}
	if res.PALError != nil {
		return nil, fmt.Errorf("sshauth: setup PAL: %w", res.PALError)
	}
	pub, sdata, err := DecodeSetupOutput(res.Outputs)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.kpal = pub
	s.sdata = sdata
	s.mu.Unlock()
	att, err := s.TQD.Quote(clientNonce)
	if err != nil {
		return nil, err
	}
	return &SetupResult{KPAL: pub, Output: res.Outputs, SLBBase: res.SLBBase, Attestation: att}, nil
}

// FreshNonce issues the server's login nonce (Figure 7: "Server -> Client:
// nonce").
func (s *Server) FreshNonce() tpm.Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nonceC++
	return palcrypto.SHA1Sum([]byte(fmt.Sprintf("sshd-nonce-%d", s.nonceC)))
}

// ErrLoginFailed is the uniform login failure (no username/password oracle).
var ErrLoginFailed = errors.New("sshauth: permission denied")

// Login runs the second Flicker session (Figure 9b) for a user and the
// client's ciphertext, and compares the PAL's hash output against the
// password file.
func (s *Server) Login(user string, ciphertext []byte, nonce tpm.Digest) error {
	s.mu.Lock()
	entry, ok := s.passwd[user]
	sdata := s.sdata
	s.mu.Unlock()
	if !ok {
		return ErrLoginFailed
	}
	if sdata == nil {
		return errors.New("sshauth: server not set up")
	}
	res, err := s.P.RunSession(NewSSHPAL(), core.SessionOptions{
		Input: EncodeLogin(&LoginRequest{
			SData:      sdata,
			Ciphertext: ciphertext,
			Salt:       entry.Salt,
			Nonce:      nonce,
		}),
		TwoStage: true,
	})
	if err != nil {
		return err
	}
	if res.PALError != nil {
		// Nonce mismatch, decryption failure, etc. — login denied.
		return ErrLoginFailed
	}
	// "if (hash = hashed passwd) then allow login".
	if !palcrypto.ConstantTimeEqual(res.Outputs, []byte(entry.Stored)) {
		return ErrLoginFailed
	}
	return nil
}

// LoginAttempt is one entry of a batched login group.
type LoginAttempt struct {
	User       string
	Ciphertext []byte
	Nonce      tpm.Digest
}

// LoginBatch checks a group of login attempts in ONE Flicker session: the
// private key is unsealed once (the sealed blob travels as the batch
// header) and each attempt costs only a decrypt plus an md5crypt — the
// paper's Section 7.3 amortization. The returned slice has one entry per
// attempt: nil for a granted login, ErrLoginFailed (or the infrastructure
// error) otherwise. Grant/deny decisions are identical to calling Login
// once per attempt.
func (s *Server) LoginBatch(attempts []LoginAttempt) []error {
	errs := make([]error, len(attempts))
	if len(attempts) == 0 {
		return errs
	}
	s.mu.Lock()
	sdata := s.sdata
	entries := make([]PasswdEntry, len(attempts))
	known := make([]bool, len(attempts))
	for i, at := range attempts {
		entries[i], known[i] = s.passwd[at.User]
	}
	s.mu.Unlock()
	if sdata == nil {
		err := errors.New("sshauth: server not set up")
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	reqs := make([][]byte, len(attempts))
	for i, at := range attempts {
		reqs[i] = EncodeBatchLogin(at.Ciphertext, entries[i].Salt, at.Nonce)
	}
	br, err := s.P.RunSessionBatch(NewSSHPAL(), core.Batch{Header: sdata, Requests: reqs},
		core.SessionOptions{TwoStage: true})
	if err == nil && br.Session.PALError != nil {
		err = br.Session.PALError
	}
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	for i := range attempts {
		switch {
		case !known[i]:
			errs[i] = ErrLoginFailed
		case br.Replies[i].Err != nil:
			errs[i] = ErrLoginFailed
		case !palcrypto.ConstantTimeEqual(br.Replies[i].Output, []byte(entries[i].Stored)):
			errs[i] = ErrLoginFailed
		}
	}
	return errs
}

// Client is the modified OpenSSH client with the flicker-password method.
type Client struct {
	CAPub *palcrypto.RSAPublicKey
	rng   *palcrypto.PRNG
	kpal  *palcrypto.RSAPublicKey
	ctr   uint64
}

// NewClient creates a client trusting the given Privacy CA.
func NewClient(caPub *palcrypto.RSAPublicKey, seed []byte) *Client {
	return &Client{CAPub: caPub, rng: palcrypto.NewPRNG(append([]byte("ssh-client|"), seed...))}
}

// TrustSetup verifies the first session's attestation and, on success,
// pins K_PAL: "by verifying the attestation from the first Flicker
// session, the client is convinced that the correct PAL executed, that the
// legitimate PAL created a fresh keypair, and that the SLB Core erased all
// secrets before returning control to the untrusted OS."
func (c *Client) TrustSetup(sr *SetupResult, myNonce tpm.Digest) error {
	im, err := core.BuildImage(NewSSHPAL(), true)
	if err != nil {
		return err
	}
	if err := im.Patch(sr.SLBBase); err != nil {
		return err
	}
	if err := attest.VerifySession(c.CAPub, sr.Attestation, myNonce, im, EncodeSetup(), sr.Output); err != nil {
		return fmt.Errorf("sshauth: setup attestation: %w", err)
	}
	pub, _, err := DecodeSetupOutput(sr.Output)
	if err != nil {
		return err
	}
	c.kpal = pub
	return nil
}

// FreshNonce issues the client's attestation challenge nonce.
func (c *Client) FreshNonce() tpm.Digest {
	c.ctr++
	return palcrypto.SHA1Sum([]byte(fmt.Sprintf("ssh-client-nonce-%d", c.ctr)))
}

// Encrypt produces the login ciphertext under the pinned K_PAL.
func (c *Client) Encrypt(password string, serverNonce tpm.Digest) ([]byte, error) {
	if c.kpal == nil {
		return nil, errors.New("sshauth: client has not verified a setup attestation")
	}
	if strings.ContainsRune(password, 0) {
		return nil, errors.New("sshauth: NUL in password")
	}
	return EncryptPassword(c.rng, c.kpal, password, serverNonce)
}
