package sshauth

import (
	"errors"
	"testing"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

type rig struct {
	srv    *Server
	client *Client
	p      *core.Platform
}

func newRig(t *testing.T) *rig {
	t.Helper()
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "ssh-test"})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := attest.NewPrivacyCA([]byte("ssh-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	tqd, err := attest.NewDaemon(p.OSTPM(), tpm.Digest{}, ca, "sshd-host")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p, tqd)
	srv.AddUser("alice", "correct horse battery", "a1b2c3d4")
	return &rig{srv: srv, client: NewClient(ca.PublicKey(), []byte("c1")), p: p}
}

// handshake runs setup + attestation verification.
func (r *rig) handshake(t *testing.T) {
	t.Helper()
	nonce := r.client.FreshNonce()
	sr, err := r.srv.Setup(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.TrustSetup(sr, nonce); err != nil {
		t.Fatal(err)
	}
}

func TestLoginSuccess(t *testing.T) {
	r := newRig(t)
	r.handshake(t)
	nonce := r.srv.FreshNonce()
	ct, err := r.client.Encrypt("correct horse battery", nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.srv.Login("alice", ct, nonce); err != nil {
		t.Fatalf("valid login rejected: %v", err)
	}
}

func TestWrongPasswordRejected(t *testing.T) {
	r := newRig(t)
	r.handshake(t)
	nonce := r.srv.FreshNonce()
	ct, _ := r.client.Encrypt("wrong password", nonce)
	if err := r.srv.Login("alice", ct, nonce); !errors.Is(err, ErrLoginFailed) {
		t.Fatalf("err = %v, want login failure", err)
	}
}

func TestUnknownUserRejected(t *testing.T) {
	r := newRig(t)
	r.handshake(t)
	nonce := r.srv.FreshNonce()
	ct, _ := r.client.Encrypt("correct horse battery", nonce)
	if err := r.srv.Login("mallory", ct, nonce); !errors.Is(err, ErrLoginFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplayedCiphertextRejected(t *testing.T) {
	// "The nonce serves to prevent replay attacks against a well-behaved
	// server" (Figure 7): an eavesdropped ciphertext from one login cannot
	// be replayed under a new server nonce.
	r := newRig(t)
	r.handshake(t)
	n1 := r.srv.FreshNonce()
	ct, _ := r.client.Encrypt("correct horse battery", n1)
	if err := r.srv.Login("alice", ct, n1); err != nil {
		t.Fatal(err)
	}
	n2 := r.srv.FreshNonce()
	if err := r.srv.Login("alice", ct, n2); !errors.Is(err, ErrLoginFailed) {
		t.Fatalf("replayed ciphertext accepted: %v", err)
	}
}

func TestPasswordNeverInTheClearOutsidePAL(t *testing.T) {
	// After a login, neither the ciphertext inputs, the outputs, nor any
	// reachable physical memory contains the cleartext password.
	r := newRig(t)
	r.handshake(t)
	password := "hunter2-ultra-secret"
	r.srv.AddUser("bob", password, "deadbeef")
	nonce := r.srv.FreshNonce()
	ct, _ := r.client.Encrypt(password, nonce)
	if err := r.srv.Login("bob", ct, nonce); err != nil {
		t.Fatal(err)
	}
	// Scan all physical memory (the compromised OS's power).
	mem, err := r.p.Machine.Mem.Read(0, r.p.Machine.Mem.Size())
	if err != nil {
		t.Fatal(err)
	}
	if containsSub(mem, []byte(password)) {
		t.Fatal("cleartext password found in physical memory after login")
	}
}

func containsSub(hay, needle []byte) bool {
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestClientRejectsEvilSetup(t *testing.T) {
	// A compromised server substitutes its own keypair (generated outside
	// Flicker) for the PAL's. The attestation cannot cover that output, so
	// the client must refuse to send the password.
	r := newRig(t)
	nonce := r.client.FreshNonce()
	sr, err := r.srv.Setup(nonce)
	if err != nil {
		t.Fatal(err)
	}
	evilKey, _ := palcrypto.GenerateRSAKey(palcrypto.NewPRNG([]byte("evil")), 512)
	evilPub := palcrypto.MarshalPublicKey(&evilKey.RSAPublicKey)
	forged := append([]byte(nil), sr.Output...)
	// Overwrite the embedded public key field.
	copy(forged[4:], evilPub)
	sr.Output = forged
	if err := r.client.TrustSetup(sr, nonce); err == nil {
		t.Fatal("client trusted a forged setup output")
	}
	if _, err := r.client.Encrypt("pw", tpm.Digest{}); err == nil {
		t.Fatal("client encrypted without a verified K_PAL")
	}
}

func TestFigure9aSetupTiming(t *testing.T) {
	// Figure 9a: PAL 1 totals 217.1 ms — SKINIT 14.3, KeyGen 185.7,
	// Seal 10.2, plus small TPM ops.
	r := newRig(t)
	before := r.p.Clock.Now()
	nonce := r.client.FreshNonce()
	if _, err := r.srv.Setup(nonce); err != nil {
		t.Fatal(err)
	}
	// Setup includes the quote (972.7 ms) which the paper reports
	// separately; subtract it to get the PAL-side cost.
	totals := r.p.Clock.ChargesSince(before)
	var palMs, quoteMs float64
	for _, c := range totals {
		if c.Label == "tpm.quote" {
			quoteMs += simtime.Millis(c.Duration)
		} else {
			palMs += simtime.Millis(c.Duration)
		}
	}
	if palMs < 210 || palMs > 228 {
		t.Fatalf("setup PAL side = %.1f ms, want ~217.1", palMs)
	}
	if quoteMs < 970 || quoteMs > 976 {
		t.Fatalf("quote = %.1f ms", quoteMs)
	}
}

func TestFigure9bLoginTiming(t *testing.T) {
	// Figure 9b: PAL 2 totals 937.6 ms — SKINIT 14.3, Unseal 905.4,
	// Decrypt 4.6 (our Broadcom profile models unseal at 898.3, Table 4's
	// figure for the same chip).
	r := newRig(t)
	r.handshake(t)
	nonce := r.srv.FreshNonce()
	ct, _ := r.client.Encrypt("correct horse battery", nonce)
	before := r.p.Clock.Now()
	if err := r.srv.Login("alice", ct, nonce); err != nil {
		t.Fatal(err)
	}
	loginMs := simtime.Millis(r.p.Clock.Now() - before)
	if loginMs < 915 || loginMs > 945 {
		t.Fatalf("login session = %.1f ms, want ~937.6", loginMs)
	}
}

func TestLoginBeforeSetupFails(t *testing.T) {
	r := newRig(t)
	nonce := r.srv.FreshNonce()
	if err := r.srv.Login("alice", []byte("ct"), nonce); err == nil {
		t.Fatal("login before setup accepted")
	}
}

func TestSDataTamperRejected(t *testing.T) {
	// The OS corrupts sdata between sessions; the login PAL's unseal must
	// fail and the login must be denied, not crash.
	r := newRig(t)
	r.handshake(t)
	r.srv.mu.Lock()
	r.srv.sdata[len(r.srv.sdata)/2] ^= 0xFF
	r.srv.mu.Unlock()
	nonce := r.srv.FreshNonce()
	ct, _ := r.client.Encrypt("correct horse battery", nonce)
	if err := r.srv.Login("alice", ct, nonce); !errors.Is(err, ErrLoginFailed) {
		t.Fatalf("err = %v", err)
	}
}
