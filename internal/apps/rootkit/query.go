package rootkit

import (
	"errors"
	"fmt"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/kernel"
	"flicker/internal/netsim"
	"flicker/internal/palcrypto"
	"flicker/internal/tpm"
)

// Host is the challenged machine: the platform running the untrusted OS,
// the tqd, and the detector PAL. This mirrors the deployment where "a
// corporation may wish to verify that employee laptops have not been
// compromised before allowing them to connect to the corporate VPN".
type Host struct {
	Platform *core.Platform
	TQD      *attest.Daemon
	detector *detectorHandle
}

type detectorHandle struct {
	p core.SessionOptions
}

// NewHost prepares a host for detection queries.
func NewHost(p *core.Platform, tqd *attest.Daemon) *Host {
	return &Host{Platform: p, TQD: tqd}
}

// Report is the host's answer to one detection query.
type Report struct {
	// Digest is the aggregate kernel hash the detector PAL computed.
	Digest tpm.Digest
	// SLBBase is where the SLB was loaded (the verifier needs it to
	// recompute the patched measurement).
	SLBBase uint32
	// Attestation covers PCR 17.
	Attestation *attest.Attestation
}

// HandleQuery runs the detector over the given regions with the verifier's
// nonce and returns the report. The untrusted OS orchestrates all of this;
// none of it is trusted — the attestation is.
func (h *Host) HandleQuery(regions [][2]uint32, nonce tpm.Digest) (*Report, error) {
	res, err := h.Platform.RunSession(NewDetectorPAL(), core.SessionOptions{
		Input: EncodeRegions(regions),
		Nonce: &nonce,
	})
	if err != nil {
		return nil, fmt.Errorf("rootkit: session: %w", err)
	}
	if res.PALError != nil {
		return nil, fmt.Errorf("rootkit: detector: %w", res.PALError)
	}
	att, err := h.TQD.Quote(nonce)
	if err != nil {
		return nil, err
	}
	var d tpm.Digest
	copy(d[:], res.Outputs)
	return &Report{Digest: d, SLBBase: res.SLBBase, Attestation: att}, nil
}

// Admin is the remote administrator: it knows the Privacy CA, the expected
// detector PAL, and the known-good kernel hash for the fleet's kernel
// build.
type Admin struct {
	CAPub     *palcrypto.RSAPublicKey
	KnownGood map[tpm.Digest]bool
	nonceCtr  uint64
	nonceSeed []byte
}

// NewAdmin creates an administrator trusting the given Privacy CA.
func NewAdmin(caPub *palcrypto.RSAPublicKey, seed []byte) *Admin {
	return &Admin{CAPub: caPub, KnownGood: make(map[tpm.Digest]bool), nonceSeed: seed}
}

// AddKnownGood registers an acceptable aggregate kernel hash.
func (a *Admin) AddKnownGood(d tpm.Digest) { a.KnownGood[d] = true }

// KnownGoodFor computes the known-good hash for a reference (clean) kernel
// with the given measurable regions — what the admin derives from a golden
// image of the fleet's kernel build.
func KnownGoodFor(ref *kernel.Kernel) (tpm.Digest, error) {
	h := palcrypto.NewSHA1()
	for _, r := range ref.MeasurableRegions() {
		data, err := ref.M.Mem.Read(r[0], int(r[1]))
		if err != nil {
			return tpm.Digest{}, err
		}
		h.Write(data)
	}
	var d tpm.Digest
	copy(d[:], h.Sum(nil))
	return d, nil
}

// Outcome is the admin's conclusion for one query.
type Outcome struct {
	// Verified means the attestation proves the genuine detector ran under
	// Flicker and returned Digest for exactly the queried regions.
	Verified bool
	// Clean means the digest matches a known-good kernel.
	Clean  bool
	Digest tpm.Digest
	// Err carries the verification failure, if any.
	Err error
}

func (a *Admin) freshNonce() tpm.Digest {
	a.nonceCtr++
	return palcrypto.SHA1Sum(append(a.nonceSeed, byte(a.nonceCtr), byte(a.nonceCtr>>8),
		byte(a.nonceCtr>>16), byte(a.nonceCtr>>24)))
}

// Query runs one remote detection round trip over the link: nonce out,
// report back, verify, compare against known-good hashes.
func (a *Admin) Query(link *netsim.Link, host *Host, regions [][2]uint32) *Outcome {
	nonce := a.freshNonce()
	var report *Report
	var hostErr error
	// Request: nonce + region list travel to the host; the response carries
	// digest + attestation (signature + cert) back, sized like the real
	// protocol messages. The link accounts both directions.
	link.RoundTrip(append(nonce[:], EncodeRegions(regions)...), func([]byte) []byte {
		report, hostErr = host.HandleQuery(regions, nonce)
		if hostErr != nil {
			return nil // error indication: an empty response frame
		}
		// The response frame is sized from host-supplied report fields; a
		// hostile or corrupted host could claim an enormous signature or AIK
		// and make the admin allocate it. Clamp to the largest frame the
		// protocol can legitimately produce (20-byte digest + RSA signature
		// + AIK public key, with slack for encoding overhead).
		const maxRespFrame = 4096
		respSize := len(report.Digest) + len(report.Attestation.Signature) + len(report.Attestation.Cert.AIKPub)
		return make([]byte, min(respSize, maxRespFrame))
	})
	if hostErr != nil {
		return &Outcome{Err: hostErr}
	}
	return a.VerifyReport(report, nonce, regions)
}

// VerifyReport validates a report against the nonce the admin issued.
func (a *Admin) VerifyReport(report *Report, nonce tpm.Digest, regions [][2]uint32) *Outcome {
	if report == nil || report.Attestation == nil {
		return &Outcome{Err: errors.New("rootkit: empty report")}
	}
	im, err := core.BuildImage(NewDetectorPAL(), false)
	if err != nil {
		return &Outcome{Err: err}
	}
	if err := im.Patch(report.SLBBase); err != nil {
		return &Outcome{Err: err}
	}
	// The detector extends its digest into PCR 17 before the SLB Core's
	// closing extends; recompute the full chain.
	expected := attest.ExpectedFinalPCR17Ext(im, []tpm.Digest{report.Digest},
		EncodeRegions(regions), report.Digest[:], &nonce)
	if err := attest.Verify(a.CAPub, report.Attestation, nonce, expected); err != nil {
		return &Outcome{Err: err, Digest: report.Digest}
	}
	return &Outcome{
		Verified: true,
		Clean:    a.KnownGood[report.Digest],
		Digest:   report.Digest,
	}
}
