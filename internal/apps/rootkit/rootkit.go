// Package rootkit implements the paper's first application (Section 6.1): a
// kernel rootkit detector that a remote administrator runs on a potentially
// compromised host. The detector PAL hashes the kernel text segment, the
// syscall table, and every loaded module inside a Flicker session, extends
// the result into PCR 17, and returns it; the attestation proves to the
// administrator that the genuine detector ran with Flicker protections and
// returned the true hash, even if the host OS is hostile.
package rootkit

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

// EncodeRegions serializes the (base, length) pairs the detector hashes.
// The encoding is the PAL's input, so it is covered by the attestation: the
// verifier sees exactly which memory was measured.
func EncodeRegions(regions [][2]uint32) []byte {
	out := make([]byte, 4+8*len(regions))
	binary.BigEndian.PutUint32(out, uint32(len(regions)))
	for i, r := range regions {
		binary.BigEndian.PutUint32(out[4+8*i:], r[0])
		binary.BigEndian.PutUint32(out[8+8*i:], r[1])
	}
	return out
}

// DecodeRegions parses EncodeRegions output.
func DecodeRegions(b []byte) ([][2]uint32, error) {
	if len(b) < 4 {
		return nil, errors.New("rootkit: truncated region list")
	}
	n := binary.BigEndian.Uint32(b)
	if int(n) > (len(b)-4)/8 {
		return nil, errors.New("rootkit: region count overflows payload")
	}
	regions := make([][2]uint32, n)
	for i := range regions {
		regions[i][0] = binary.BigEndian.Uint32(b[4+8*i:])
		regions[i][1] = binary.BigEndian.Uint32(b[8+8*i:])
	}
	return regions, nil
}

// detectorVersion pins the PAL identity.
const detectorVersion = "1.0-linux2.6.20"

// NewDetectorPAL builds the detector. The returned PAL hashes each input
// region in order into one running SHA-1, extends the digest into PCR 17,
// and outputs it. Its code identity covers the version and the padding
// that sizes the SLB (the paper's detector SLB costs 15.4 ms of SKINIT,
// i.e. roughly 5.4 KB).
func NewDetectorPAL() pal.PAL {
	// Pad the PAL so the one-stage SLB comes to ~5380 bytes, reproducing
	// Table 1's 15.4 ms SKINIT row.
	const targetSLB = 5380
	pad := targetSLB - slb.CoreRegionLen
	code := pal.DescriptorCode("rootkit-detector", detectorVersion,
		[]string{"TPM Driver", "TPM Utilities"}, make([]byte, pad))
	// Trim or pad the descriptor so the built SLB is exactly targetSLB
	// bytes (the descriptor framing adds a few dozen bytes over pad).
	if len(code) > pad {
		code = code[:pad]
	}
	return &pal.Func{
		PALName: "rootkit-detector",
		Binary:  code,
		Fn:      runDetector,
	}
}

func runDetector(env *pal.Env, input []byte) ([]byte, error) {
	regions, err := DecodeRegions(input)
	if err != nil {
		return nil, err
	}
	// One running hash over all regions, charged at main-CPU hash speed.
	h := palcrypto.NewSHA1()
	total := 0
	for _, r := range regions {
		data, err := env.ReadMem(r[0], int(r[1]))
		if err != nil {
			return nil, fmt.Errorf("rootkit: reading region %#x: %w", r[0], err)
		}
		h.Write(data)
		total += int(r[1])
	}
	env.ChargeCPU(simtime.Charge{Duration: env.Profile().CPUHashCost(total), Label: "cpu.hash"})
	var digest tpm.Digest
	copy(digest[:], h.Sum(nil))
	// Extend the result into PCR 17 so the attestation covers it directly.
	if err := env.ExtendPCR17(digest); err != nil {
		return nil, err
	}
	return digest[:], nil
}
