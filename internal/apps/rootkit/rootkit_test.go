package rootkit

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/netsim"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

// fixture boots a host platform with some modules loaded, a tqd, and an
// admin who derived the known-good hash from an identical golden image.
type fixture struct {
	host  *Host
	admin *Admin
	link  *netsim.Link
	p     *core.Platform
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "rk-test", MemSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []struct {
		name string
		size int
	}{{"ext3", 96 * 1024}, {"e1000", 128 * 1024}, {"tpm_tis", 32 * 1024}} {
		if _, err := p.Kernel.LoadModule(m.name, m.size); err != nil {
			t.Fatal(err)
		}
	}
	ca, err := attest.NewPrivacyCA([]byte("rk-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	tqd, err := attest.NewDaemon(p.OSTPM(), tpm.Digest{}, ca, "laptop-42")
	if err != nil {
		t.Fatal(err)
	}
	admin := NewAdmin(ca.PublicKey(), []byte("admin-nonces"))
	// Golden image: a twin platform with the same kernel build.
	golden, err := core.NewPlatform(core.PlatformConfig{Seed: "rk-test", MemSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []struct {
		name string
		size int
	}{{"ext3", 96 * 1024}, {"e1000", 128 * 1024}, {"tpm_tis", 32 * 1024}} {
		golden.Kernel.LoadModule(m.name, m.size)
	}
	known, err := KnownGoodFor(golden.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	admin.AddKnownGood(known)
	link := netsim.PaperLink(p.Clock)
	link.Instrument(p.Metrics, "admin")
	return &fixture{
		host:  NewHost(p, tqd),
		admin: admin,
		link:  link,
		p:     p,
	}
}

func TestCleanKernelPasses(t *testing.T) {
	f := newFixture(t)
	out := f.admin.Query(f.link, f.host, f.p.Kernel.MeasurableRegions())
	if out.Err != nil {
		t.Fatalf("query failed: %v", out.Err)
	}
	if !out.Verified {
		t.Fatal("attestation did not verify")
	}
	if !out.Clean {
		t.Fatal("clean kernel reported dirty")
	}
	// The admin link's traffic landed in the platform's registry.
	if st := f.link.Stats(); st.RoundTrips < 1 || st.BytesSent == 0 || st.BytesReceived == 0 {
		t.Errorf("link stats not accounted: %+v", st)
	}
	rts := f.p.Metrics.Counter("flicker_net_roundtrips_total", "", "link")
	if got := rts.With("admin").Value(); got < 1 {
		t.Errorf("registry roundtrips = %v, want >= 1", got)
	}
}

func TestSyscallHookDetected(t *testing.T) {
	f := newFixture(t)
	if err := f.p.Kernel.InstallRootkit("adore-ng", []int{2, 11, 39}); err != nil {
		t.Fatal(err)
	}
	out := f.admin.Query(f.link, f.host, f.p.Kernel.MeasurableRegions())
	if out.Err != nil || !out.Verified {
		t.Fatalf("query failed: %v", out.Err)
	}
	if out.Clean {
		t.Fatal("syscall-table rootkit not detected")
	}
}

func TestInlineTextHookDetected(t *testing.T) {
	f := newFixture(t)
	if err := f.p.Kernel.PatchKernelText(0x1234, []byte{0xE9, 0x00, 0xBE, 0xEF}); err != nil {
		t.Fatal(err)
	}
	out := f.admin.Query(f.link, f.host, f.p.Kernel.MeasurableRegions())
	if out.Err != nil || !out.Verified {
		t.Fatalf("query failed: %v", out.Err)
	}
	if out.Clean {
		t.Fatal("inline text hook not detected")
	}
}

func TestLyingHostCaughtByAttestation(t *testing.T) {
	// A compromised host runs the detection honestly but then rewrites the
	// digest in the report to the known-good value. The attestation covers
	// the PAL's output, so the forgery must fail verification.
	f := newFixture(t)
	f.p.Kernel.InstallRootkit("suckit", []int{1})
	regions := f.p.Kernel.MeasurableRegions()
	nonce := f.admin.freshNonce()
	report, err := f.host.HandleQuery(regions, nonce)
	if err != nil {
		t.Fatal(err)
	}
	// Forge the digest to the admin's known-good value.
	var forged tpm.Digest
	for d := range f.admin.KnownGood {
		forged = d
	}
	report.Digest = forged
	out := f.admin.VerifyReport(report, nonce, regions)
	if out.Err == nil || out.Verified {
		t.Fatal("forged report verified")
	}
}

func TestShrunkRegionListCaught(t *testing.T) {
	// A compromised host hashes fewer regions (skipping the hooked syscall
	// table) hoping the admin won't notice. The region list is the PAL's
	// input and is extended into PCR 17, so the verifier sees it.
	f := newFixture(t)
	f.p.Kernel.InstallRootkit("skippy", []int{7})
	full := f.p.Kernel.MeasurableRegions()
	partial := full[:1] // text only, skipping the syscall table
	nonce := f.admin.freshNonce()
	report, err := f.host.HandleQuery(partial, nonce)
	if err != nil {
		t.Fatal(err)
	}
	// The admin verifies against the region list IT requested.
	out := f.admin.VerifyReport(report, nonce, full)
	if out.Err == nil || out.Verified {
		t.Fatal("report over shrunk region list verified against full list")
	}
}

func TestQueryLatencyMatchesTable1(t *testing.T) {
	// End-to-end: "the average query time was 1.02 seconds" (Section 7.2),
	// dominated by the 972.7 ms Broadcom TPM quote.
	f := newFixture(t)
	start := f.p.Clock.Now()
	out := f.admin.Query(f.link, f.host, f.p.Kernel.MeasurableRegions())
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	total := simtime.Millis(f.p.Clock.Now() - start)
	if total < 980 || total > 1070 {
		t.Fatalf("end-to-end query latency = %.1f ms, want ~1020 ms", total)
	}
	// Breakdown sanity (Table 1): quote dominates.
	totals := f.p.Clock.TotalByLabel()
	quote := simtime.Millis(totals["tpm.quote"])
	if quote < 970 || quote > 976 {
		t.Fatalf("quote = %.1f ms, want 972.7", quote)
	}
}

func TestDetectorSLBSizeGivesPaperSkinit(t *testing.T) {
	im, err := core.BuildImage(NewDetectorPAL(), false)
	if err != nil {
		t.Fatal(err)
	}
	cost := simtime.Millis(simtime.ProfileBroadcom().SkinitCost(im.MeasuredLen()))
	// Table 1 reports SKINIT 15.4 ms for the detector's SLB.
	if cost < 14.9 || cost > 15.9 {
		t.Fatalf("detector SKINIT = %.2f ms (SLB %d bytes), want ~15.4", cost, im.MeasuredLen())
	}
}

func TestRegionCodecRoundTrip(t *testing.T) {
	f := func(pairs [][2]uint32) bool {
		enc := EncodeRegions(pairs)
		dec, err := DecodeRegions(enc)
		if err != nil {
			return false
		}
		if len(dec) != len(pairs) {
			return false
		}
		for i := range dec {
			if dec[i] != pairs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	// Malformed inputs are rejected.
	if _, err := DecodeRegions([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := DecodeRegions([]byte{0, 0, 1, 0}); err == nil {
		t.Error("overflowing count accepted")
	}
}

func TestBadRegionFailsCleanly(t *testing.T) {
	f := newFixture(t)
	// Region beyond physical memory: PAL error, not a crash.
	_, err := f.host.HandleQuery([][2]uint32{{0xFFFF0000, 1 << 20}}, tpm.Digest{})
	if err == nil || !strings.Contains(err.Error(), "detector") {
		t.Fatalf("err = %v", err)
	}
	// The platform still works.
	out := f.admin.Query(f.link, f.host, f.p.Kernel.MeasurableRegions())
	if out.Err != nil || !out.Clean {
		t.Fatalf("follow-up query: %+v", out)
	}
}

func TestSystemImpactNegligible(t *testing.T) {
	// Table 3: periodic detection has negligible impact on a kernel build.
	// Scaled-down version of the bench: a 30 s build with detection every
	// 5 s costs well under 1% extra.
	f := newFixture(t)
	regions := f.p.Kernel.MeasurableRegions()

	baseline, err := core.NewPlatform(core.PlatformConfig{Seed: "rk-base", MemSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	baseline.Kernel.Spawn("make", 30*time.Second)
	t0 := baseline.Clock.Now()
	baseline.Kernel.RunToCompletion()
	baseTime := baseline.Clock.Now() - t0

	// Only the Flicker session suspends the OS; the TPM quote runs on the
	// TPM chip while the build continues, so it is not part of the
	// suspension cost (Section 7.4.1: the quote "does not impact the
	// performance of other processes").
	f.p.Kernel.Spawn("make", 30*time.Second)
	t0 = f.p.Clock.Now()
	for {
		if f.p.Kernel.Run(5*time.Second) == 0 {
			break
		}
		res, err := f.p.RunSession(NewDetectorPAL(), core.SessionOptions{Input: EncodeRegions(regions)})
		if err != nil || res.PALError != nil {
			t.Fatalf("%v %v", err, res.PALError)
		}
	}
	withDetection := f.p.Clock.Now() - t0
	overhead := float64(withDetection-baseTime) / float64(baseTime)
	if overhead > 0.02 {
		t.Fatalf("detection overhead = %.2f%%, want < 2%%", overhead*100)
	}
}
