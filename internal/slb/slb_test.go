package slb

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"flicker/internal/palcrypto"
	"flicker/internal/tpm"
)

func TestBuildLayout(t *testing.T) {
	code := []byte("hello world PAL code")
	im, err := Build(PALCode{Name: "hello", Code: code})
	if err != nil {
		t.Fatal(err)
	}
	data := im.Bytes()
	if got := binary.LittleEndian.Uint16(data[0:2]); int(got) != len(data) {
		t.Errorf("length field = %d, want %d", got, len(data))
	}
	entry := binary.LittleEndian.Uint16(data[2:4])
	if int(entry) >= len(data) {
		t.Error("entry point outside SLB")
	}
	if !bytes.Equal(data[CoreRegionLen:], code) {
		t.Error("PAL code not at PALOffset")
	}
	if im.PALOffset() != CoreRegionLen {
		t.Error("PALOffset mismatch")
	}
	if im.TwoStage() {
		t.Error("plain build marked two-stage")
	}
}

func TestBuildRejectsEmptyAndOversized(t *testing.T) {
	if _, err := Build(PALCode{Name: "empty"}); err == nil {
		t.Error("empty PAL accepted")
	}
	big := make([]byte, MaxPALEnd) // plus core region, exceeds 60 KB
	if _, err := Build(PALCode{Name: "big", Code: big}); err == nil {
		t.Error("oversized PAL accepted")
	}
	// Largest that fits.
	just := make([]byte, MaxPALEnd-CoreRegionLen)
	if _, err := Build(PALCode{Name: "just", Code: just}); err != nil {
		t.Errorf("max-size PAL rejected: %v", err)
	}
}

func TestMeasurementDependsOnCode(t *testing.T) {
	a, _ := Build(PALCode{Name: "a", Code: []byte("pal A")})
	b, _ := Build(PALCode{Name: "b", Code: []byte("pal B")})
	if a.Measurement() == b.Measurement() {
		t.Fatal("different PALs share a measurement")
	}
	// The name must NOT affect the measurement (identity is code).
	a2, _ := Build(PALCode{Name: "renamed", Code: []byte("pal A")})
	if a.Measurement() != a2.Measurement() {
		t.Fatal("PAL name leaked into measurement")
	}
}

func TestPatchChangesMeasurementDeterministically(t *testing.T) {
	mk := func() *Image {
		im, _ := Build(PALCode{Name: "p", Code: []byte("some pal")})
		return im
	}
	unpatched := mk().Measurement()
	one := mk()
	if err := one.Patch(0x100000); err != nil {
		t.Fatal(err)
	}
	if one.Measurement() == unpatched {
		t.Fatal("patching did not change the measurement")
	}
	two := mk()
	two.Patch(0x100000)
	if one.Measurement() != two.Measurement() {
		t.Fatal("same base produced different measurements")
	}
	three := mk()
	three.Patch(0x200000)
	if one.Measurement() == three.Measurement() {
		t.Fatal("different bases produced the same measurement")
	}
	// Re-patching for the same base is fine; a different base is not.
	if err := one.Patch(0x100000); err != nil {
		t.Fatal(err)
	}
	if err := one.Patch(0x300000); err == nil {
		t.Fatal("re-patch to a new base accepted")
	}
	if !one.Patched() || one.Base() != 0x100000 {
		t.Fatal("patch bookkeeping wrong")
	}
}

func TestExpectedPCR17Formula(t *testing.T) {
	im, _ := Build(PALCode{Name: "f", Code: []byte("formula pal")})
	im.Patch(0x10000)
	want := tpm.ExtendDigest(tpm.Digest{}, palcrypto.SHA1Sum(im.Bytes()))
	if im.ExpectedPCR17() != want {
		t.Fatal("ExpectedPCR17 != H(0 || H(P))")
	}
}

func TestTwoStageBuild(t *testing.T) {
	code := bytes.Repeat([]byte{0xEE}, 30*1024)
	im, err := BuildTwoStage(PALCode{Name: "big", Code: code})
	if err != nil {
		t.Fatal(err)
	}
	if !im.TwoStage() {
		t.Fatal("not marked two-stage")
	}
	if im.MeasuredLen() != 4736 {
		t.Fatalf("measured length = %d, want 4736", im.MeasuredLen())
	}
	// Header length field governs the SKINIT transfer.
	if got := binary.LittleEndian.Uint16(im.Bytes()[0:2]); got != 4736 {
		t.Fatalf("header length = %d", got)
	}
	// Stage-1 measurement covers only the stub; stage-2 covers everything.
	if im.Measurement() != palcrypto.SHA1Sum(im.Bytes()[:4736]) {
		t.Fatal("stub measurement wrong")
	}
	if im.WindowMeasurement() != palcrypto.SHA1Sum(im.Bytes()) {
		t.Fatal("window measurement wrong")
	}
	want := tpm.ExtendDigest(im.ExpectedPCR17(), im.WindowMeasurement())
	if im.ExpectedPCR17TwoStage() != want {
		t.Fatal("two-stage PCR 17 formula wrong")
	}
}

func TestTwoStagePadsTinyPAL(t *testing.T) {
	im, err := BuildTwoStage(PALCode{Name: "tiny", Code: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	if im.Len() < 4736 {
		t.Fatalf("tiny two-stage image is %d bytes", im.Len())
	}
}

func TestStubMeasurementIgnoresPALChanges(t *testing.T) {
	// The point of the optimization: SKINIT's direct measurement covers
	// only the stub, so two different PALs have the same *stage-1*
	// measurement but different *stage-2* (window) measurements.
	a, _ := BuildTwoStage(PALCode{Name: "a", Code: bytes.Repeat([]byte{1}, 20000)})
	b, _ := BuildTwoStage(PALCode{Name: "b", Code: bytes.Repeat([]byte{2}, 20000)})
	if a.Measurement() != b.Measurement() {
		t.Fatal("stub measurements differ; stub should be PAL-independent")
	}
	if a.WindowMeasurement() == b.WindowMeasurement() {
		t.Fatal("window measurements identical for different PALs")
	}
	if a.ExpectedPCR17TwoStage() == b.ExpectedPCR17TwoStage() {
		t.Fatal("final PCR 17 identical for different PALs")
	}
}

// Property: building the same PAL twice yields byte-identical images, and
// the length header always matches the byte count.
func TestBuildDeterministicProperty(t *testing.T) {
	f := func(code []byte) bool {
		if len(code) == 0 || len(code) > 8192 {
			return true
		}
		a, err := Build(PALCode{Name: "p", Code: code})
		if err != nil {
			return false
		}
		b, _ := Build(PALCode{Name: "p", Code: code})
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			return false
		}
		return int(binary.LittleEndian.Uint16(a.Bytes()[0:2])) == a.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSessionTerminatorStable(t *testing.T) {
	want := palcrypto.SHA1Sum([]byte("flicker-session-terminator-v1"))
	if SessionTerminator != want {
		t.Fatal("session terminator constant drifted")
	}
}
