// Package slb builds Secure Loader Block images: the byte blob passed to
// SKINIT, laid out as in Figure 3 of the paper. An SLB contains a 4-byte
// header (length and entry point, both 16-bit), the SLB Core (skeleton GDT,
// TSS, stack space, and the init/cleanup/resume code), and the PAL linked
// after it. Inputs, outputs and saved kernel state live in well-known pages
// just above the 64 KB SLB region.
//
// Because SKINIT hashes the SLB exactly as loaded, and the flicker-module
// patches the skeleton GDT/TSS with the actual load address before
// launching, the measurement of an SLB is a function of (PAL code, load
// address). Build produces the unpatched image; Patch fixes it for a base
// address; Measurement/ExpectedPCR17 then give the values a verifier must
// expect.
package slb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flicker/internal/palcrypto"
	"flicker/internal/tpm"
)

// Layout constants (Figure 3).
const (
	// MaxLen is the architectural SLB limit; the 16-bit length field makes
	// the largest representable SLB 65535 bytes.
	MaxLen = 64 * 1024
	// MaxPALEnd is where PAL code must end ("End of PAL (Start + 60KB)");
	// the top 4 KB of the SLB window is reserved for the skeleton page
	// tables built during OS resume.
	MaxPALEnd = 60 * 1024

	headerLen = 4 // length (u16 LE) + entry point (u16 LE)
	gdtLen    = 8 * 8
	tssLen    = 104
	coreLen   = 319  // SLB Core code: 0.312 KB in Figure 6
	stackLen  = 4096 // "Stack Space (4 KB)"

	// CoreRegionLen is everything before the PAL: header, GDT, TSS, core
	// code, stack.
	CoreRegionLen = headerLen + gdtLen + tssLen + coreLen + stackLen

	// Offsets of the patchable skeleton structures.
	gdtOff = headerLen
	tssOff = gdtOff + gdtLen

	// Well-known pages relative to the SLB base (Section 5.1.1: "Our
	// convention is to use the second 4-KB page above the 64-KB SLB" for
	// outputs).
	InputsOffset     = MaxLen          // first 4 KB page above the SLB
	OutputsOffset    = MaxLen + 4096   // second 4 KB page above the SLB
	SavedStateOffset = MaxLen + 2*4096 // saved kernel state for resume
	ParamAreaLen     = MaxLen + 3*4096 // total footprint incl. parameter pages
	PageSize         = 4096

	// ExtraCodeOffset is where "Additional PAL Code" beyond the 64 KB SLB
	// window is placed ("By default, these protections are offered to
	// 64 KB of memory, but they can be extended to larger memory regions.
	// If this is done, preparatory code in the first 64 KB must add this
	// additional memory to the DEV, and extend measurements of the
	// contents of this additional memory into the TPM's PCR 17", §2.4).
	ExtraCodeOffset = ParamAreaLen
	// MaxExtraCode bounds the upper region the flicker-module reserves.
	MaxExtraCode = 256 * 1024
	// RegionLen is the full memory footprint the flicker-module allocates:
	// SLB window + parameter pages + the extra-code region.
	RegionLen = ParamAreaLen + MaxExtraCode
)

// slbCoreCode is the deterministic stand-in for the SLB Core's machine
// code. Its bytes are versioned so that a change to the simulated SLB Core
// semantics changes every PAL measurement, exactly as recompiling the real
// SLB Core would.
var slbCoreCode = palcrypto.NewPRNG([]byte("flicker-slb-core-v1.0")).Bytes(coreLen)

// SessionTerminator is the "well known value" the SLB Core extends into
// PCR 17 to signal the completion of the SLB (Section 4.2, "Extend PCR"),
// and again as the fixed public constant that caps the session and revokes
// sealed-storage access (Section 4.4.1).
var SessionTerminator = palcrypto.SHA1Sum([]byte("flicker-session-terminator-v1"))

// PALCode identifies the application logic linked into an SLB.
type PALCode struct {
	// Name is a human label; it does not affect the measurement.
	Name string
	// Code is the PAL's deterministic binary identity: the bytes linked
	// after the SLB Core and hashed by SKINIT.
	Code []byte
	// Extra is "Additional PAL Code" that does not fit in the 64 KB SLB
	// window. It is placed above the parameter pages; preparatory code in
	// the measured SLB extends its protection (DEV) and measurement
	// (PCR 17) before transferring control to it.
	Extra []byte
}

// Image is a built SLB.
type Image struct {
	name    string
	data    []byte
	patched bool
	base    uint32
	// stubLen, for two-stage images, is the measured prefix length; zero
	// means the whole image is measured directly by SKINIT.
	stubLen int
	// extra is the additional PAL code above the 64 KB window.
	extra []byte
	// Cached digests, computed at link time and recomputed whenever Patch
	// actually rewrites bytes. Measurement/WindowMeasurement/ExtraMeasurement
	// are on the per-session hot path, so they must not rehash an image whose
	// bytes have not changed.
	meas       tpm.Digest
	windowMeas tpm.Digest
	extraMeas  tpm.Digest
	// patchGen counts byte-rewriting Patch calls; external indexes keyed on
	// image contents (Platform.LaunchByMeasurement's digest index) use it to
	// notice staleness.
	patchGen uint64
}

// refreshDigests recomputes the cached measurements from the current bytes.
func (im *Image) refreshDigests() {
	im.meas = palcrypto.SHA1Sum(im.data[:im.MeasuredLen()])
	im.windowMeas = palcrypto.SHA1Sum(im.data)
	im.extraMeas = palcrypto.SHA1Sum(im.extra)
	im.patchGen++
}

// PatchGen returns a counter that changes whenever the image bytes change
// (at link time and on each byte-rewriting Patch). Callers caching derived
// values can compare it to detect staleness.
func (im *Image) PatchGen() uint64 { return im.patchGen }

// Build links a PAL against the SLB Core, producing an unpatched image.
func Build(p PALCode) (*Image, error) {
	if len(p.Code) == 0 {
		return nil, errors.New("slb: empty PAL code")
	}
	if len(p.Extra) > MaxExtraCode {
		return nil, fmt.Errorf("slb: %d bytes of extra PAL code exceed the %d-byte region",
			len(p.Extra), MaxExtraCode)
	}
	total := CoreRegionLen + len(p.Code)
	if total > MaxPALEnd {
		return nil, fmt.Errorf("slb: PAL of %d bytes makes a %d-byte SLB; limit is %d (60 KB)",
			len(p.Code), total, MaxPALEnd)
	}
	data := make([]byte, total)
	binary.LittleEndian.PutUint16(data[0:2], uint16(total))
	// Entry point: the SLB Core's init code, which follows the GDT and TSS.
	binary.LittleEndian.PutUint16(data[2:4], uint16(tssOff+tssLen))
	copy(data[tssOff+tssLen:], slbCoreCode)
	copy(data[CoreRegionLen:], p.Code)
	im := &Image{name: p.Name, data: data, extra: append([]byte(nil), p.Extra...)}
	im.refreshDigests()
	return im, nil
}

// Name returns the PAL label.
func (im *Image) Name() string { return im.name }

// Len returns the SLB length in bytes (the header's length field).
func (im *Image) Len() int { return len(im.data) }

// MeasuredLen returns how many bytes SKINIT transfers to the TPM: the whole
// image for ordinary SLBs, only the stub for two-stage images.
func (im *Image) MeasuredLen() int {
	if im.stubLen > 0 {
		return im.stubLen
	}
	return len(im.data)
}

// TwoStage reports whether this is a measurement-stub image (Section 7.2's
// SKINIT optimization).
func (im *Image) TwoStage() bool { return im.stubLen > 0 }

// Patch fills the skeleton GDT and TSS with segment descriptors based at
// slbBase, which the flicker-module does once it knows where the kernel
// allocated the SLB. Patching is idempotent for the same base and rejected
// for a second, different base (the image bytes would no longer match what
// a verifier expects).
func (im *Image) Patch(slbBase uint32) error {
	if im.patched {
		if im.base != slbBase {
			return fmt.Errorf("slb: image already patched for base %#x", im.base)
		}
		// Idempotent re-patch for the same base: the descriptors already
		// hold exactly these bytes, so skip the rewrite and keep the cached
		// digests (and any external index keyed on PatchGen) valid.
		return nil
	}
	// Each GDT descriptor gets the base address; the simulated descriptor
	// layout stores base in bytes 2-5 and a flat 64 KB limit in bytes 0-1.
	for i := 1; i < 4; i++ { // entries 1..3: CS, DS, SS
		off := gdtOff + i*8
		binary.LittleEndian.PutUint16(im.data[off:], uint16(MaxLen-1))
		binary.LittleEndian.PutUint32(im.data[off+2:], slbBase)
	}
	// TSS: ring-0 stack pointer at the top of the stack space.
	binary.LittleEndian.PutUint32(im.data[tssOff+4:], slbBase+uint32(CoreRegionLen-4))
	im.patched = true
	im.base = slbBase
	im.refreshDigests()
	return nil
}

// Patched reports whether the image has been fixed to a base address.
func (im *Image) Patched() bool { return im.patched }

// Base returns the patched base address (zero if unpatched).
func (im *Image) Base() uint32 { return im.base }

// Bytes returns the image contents. The caller must not modify them.
func (im *Image) Bytes() []byte { return im.data }

// Measurement returns SHA-1 over the bytes SKINIT transfers (the full image,
// or the stub prefix of a two-stage image), i.e. H(P). The digest is
// precomputed at link/patch time, so this is O(1).
func (im *Image) Measurement() tpm.Digest {
	return im.meas
}

// ExpectedPCR17 returns the PCR 17 value right after SKINIT:
// V = H(0x00^20 || H(P)).
func (im *Image) ExpectedPCR17() tpm.Digest {
	return tpm.ExtendDigest(tpm.Digest{}, im.Measurement())
}

// PALOffset returns the offset of the PAL code within the image.
func (im *Image) PALOffset() int {
	if im.stubLen > 0 {
		return im.stubLen
	}
	return CoreRegionLen
}

// stubPrefixLen is the measured prefix of a two-stage SLB: 4736 bytes, the
// size the paper reports for its hash-and-extend PAL ("We have constructed
// such a PAL in 4736 bytes").
const stubPrefixLen = 4736

// BuildTwoStage builds the Section 7.2 optimized SLB: the measured part is
// a 4736-byte stub containing a hash function and minimal TPM support; the
// stub then hashes the full 64 KB window on the main CPU and extends the
// result into PCR 17 before jumping to the PAL. SKINIT only transfers the
// stub, cutting its cost from ~176 ms to ~14 ms on the paper's hardware.
func BuildTwoStage(p PALCode) (*Image, error) {
	if len(p.Code) == 0 {
		return nil, errors.New("slb: empty PAL code")
	}
	if len(p.Extra) > MaxExtraCode {
		return nil, fmt.Errorf("slb: %d bytes of extra PAL code exceed the %d-byte region",
			len(p.Extra), MaxExtraCode)
	}
	total := stubPrefixLen + len(p.Code)
	if total > MaxPALEnd {
		return nil, fmt.Errorf("slb: PAL of %d bytes makes a %d-byte two-stage SLB; limit is %d (60 KB)",
			len(p.Code), total, MaxPALEnd)
	}
	// The stub is a self-contained measured prefix: the SLB Core plus the
	// hash-and-extend code, padded to exactly 4736 bytes. The application
	// PAL lives entirely after it, so the stub bytes — and hence the
	// stage-1 measurement — are independent of the PAL.
	data := make([]byte, total)
	// Header's length field governs how much SKINIT transfers: the stub.
	binary.LittleEndian.PutUint16(data[0:2], uint16(stubPrefixLen))
	binary.LittleEndian.PutUint16(data[2:4], uint16(tssOff+tssLen))
	copy(data[tssOff+tssLen:], slbCoreCode)
	copy(data[tssOff+tssLen+coreLen:], stubHashCode)
	copy(data[stubPrefixLen:], p.Code)
	im := &Image{name: p.Name, data: data, stubLen: stubPrefixLen,
		extra: append([]byte(nil), p.Extra...)}
	im.refreshDigests()
	return im, nil
}

// stubHashCode is the deterministic stand-in for the stub's hash-and-extend
// code, filling the measured prefix between the SLB Core and 4736 bytes.
var stubHashCode = palcrypto.NewPRNG([]byte("flicker-measurement-stub-v1.0")).
	Bytes(stubPrefixLen - (tssOff + tssLen + coreLen))

// WindowMeasurement returns the digest the two-stage stub extends into
// PCR 17: the hash of the full image as loaded (stage 2 of the optimized
// measurement). For a one-stage image it is not meaningful and returns the
// plain image hash.
func (im *Image) WindowMeasurement() tpm.Digest {
	return im.windowMeas
}

// ExpectedPCR17TwoStage returns the PCR 17 value after both measurement
// stages of an optimized SLB: extend(extend(0, H(stub)), H(window)).
func (im *Image) ExpectedPCR17TwoStage() tpm.Digest {
	return tpm.ExtendDigest(im.ExpectedPCR17(), im.WindowMeasurement())
}

// Extra returns the additional PAL code above the 64 KB window (nil for
// ordinary PALs). Callers must not modify it.
func (im *Image) Extra() []byte { return im.extra }

// HasExtra reports whether this image carries additional PAL code.
func (im *Image) HasExtra() bool { return len(im.extra) > 0 }

// ExtraMeasurement returns H(extra), the digest the preparatory code
// extends into PCR 17 after adding the upper region to the DEV.
func (im *Image) ExtraMeasurement() tpm.Digest {
	return im.extraMeas
}
