// Package netsim models the network between a Flicker platform and a remote
// party as a latency/bandwidth link on the shared simulated clock. The
// paper's remote verifier is "12 hops away ... average ping time of 9.45 ms
// over 50 trials" (Section 7.1); that RTT is what separates PAL latency
// from end-to-end query latency in Table 1.
package netsim

import (
	"sync"
	"time"

	"flicker/internal/metrics"
	"flicker/internal/simtime"
)

// Link is a bidirectional network path with fixed RTT and optional
// per-byte serialization cost. It accounts all traffic it carries
// (round-trips, bytes in each direction, simulated wire time), so the
// network cost of the distcomp/sshauth/ca application protocols is
// measurable; Instrument folds the accounting into a metrics registry.
//
// A Link is safe for concurrent round-trips: the attestation fabric drives
// one shared network from many goroutines, so Send/RoundTrip/Stats may be
// called from any number of callers. The RTT and PerByte fields are part
// of the link's construction; set them before the link is shared (writes
// that race in-flight transfers are the caller's bug, as with any Go
// struct field).
type Link struct {
	clock *simtime.Clock
	// RTT is the round-trip time; one-way sends charge RTT/2.
	RTT time.Duration
	// PerByte charges serialization/transfer per payload byte (zero for a
	// pure-latency link).
	PerByte time.Duration

	mu    sync.Mutex
	stats LinkStats

	// Traffic instrumentation (see Instrument); always non-nil, detached
	// until Instrument is called.
	metRoundTrips *metrics.Counter
	metBytes      map[string]*metrics.Counter // direction -> counter
	metWire       *metrics.Counter
}

// LinkStats is the cumulative traffic the link has carried.
type LinkStats struct {
	// RoundTrips counts completed RoundTrip exchanges.
	RoundTrips int
	// BytesSent and BytesReceived account payload bytes from the local
	// platform's perspective (RoundTrip requests are sent, responses
	// received; a bare Send counts as sent).
	BytesSent     int64
	BytesReceived int64
	// WireTime is the summed simulated time the link charged for
	// serialization and propagation.
	WireTime time.Duration
}

// NewLink creates a link on the given clock.
func NewLink(clock *simtime.Clock, rtt time.Duration, perByte time.Duration) *Link {
	l := &Link{clock: clock, RTT: rtt, PerByte: perByte}
	l.Instrument(nil, "")
	return l
}

// PaperLink returns the evaluation-section link: 9.45 ms average RTT.
func PaperLink(clock *simtime.Clock) *Link {
	return NewLink(clock, simtime.FromMillis(9.45), 0)
}

// Instrument folds the link's traffic accounting into a registry under the
// given link name. The metric families are:
//
//	flicker_net_roundtrips_total{link}        — completed request/response pairs
//	flicker_net_bytes_total{link,direction}   — payload bytes, sent|received
//	flicker_net_wire_seconds_total{link}      — simulated serialization+propagation
func (l *Link) Instrument(reg *metrics.Registry, name string) {
	if name == "" {
		name = "link"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metRoundTrips = reg.Counter("flicker_net_roundtrips_total",
		"Completed request/response exchanges per link.", "link").With(name).Cell()
	bytes := reg.Counter("flicker_net_bytes_total",
		"Payload bytes carried per link and direction.", "link", "direction")
	l.metBytes = map[string]*metrics.Counter{
		"sent":     bytes.With(name, "sent").Cell(),
		"received": bytes.With(name, "received").Cell(),
	}
	l.metWire = reg.Counter("flicker_net_wire_seconds_total",
		"Simulated wire time charged per link.", "link").With(name).Cell()
}

// Stats returns a snapshot of the link's cumulative traffic.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// transfer moves a payload one way, charging wire time and accounting the
// traffic in the given direction ("sent" or "received"). The latency
// parameters are snapshotted under the link's lock so concurrent callers
// never observe a torn read against Instrument or a late configuration
// write.
func (l *Link) transfer(payload []byte, direction string) []byte {
	l.mu.Lock()
	rtt, perByte := l.RTT, l.PerByte
	l.mu.Unlock()
	charged := l.clock.Advance(rtt/2+time.Duration(len(payload))*perByte, "net.send")
	l.mu.Lock()
	if direction == "sent" {
		l.stats.BytesSent += int64(len(payload))
	} else {
		l.stats.BytesReceived += int64(len(payload))
	}
	l.stats.WireTime += charged
	bytes, wire := l.metBytes[direction], l.metWire
	l.mu.Unlock()
	bytes.Add(float64(len(payload)))
	wire.Add(metrics.Seconds(charged))
	out := make([]byte, len(payload))
	copy(out, payload)
	return out
}

// Send delivers a payload one way, charging half the RTT plus transfer
// time, and returns a copy of the payload (as the remote end receives it).
func (l *Link) Send(payload []byte) []byte {
	return l.transfer(payload, "sent")
}

// RoundTrip models a request/response exchange: request out, handler runs,
// response back. It returns the handler's response bytes.
func (l *Link) RoundTrip(request []byte, handle func(req []byte) []byte) []byte {
	req := l.transfer(request, "sent")
	resp := handle(req)
	out := l.transfer(resp, "received")
	l.mu.Lock()
	l.stats.RoundTrips++
	rt := l.metRoundTrips
	l.mu.Unlock()
	rt.Inc()
	return out
}
