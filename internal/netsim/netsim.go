// Package netsim models the network between a Flicker platform and a remote
// party as a latency/bandwidth link on the shared simulated clock. The
// paper's remote verifier is "12 hops away ... average ping time of 9.45 ms
// over 50 trials" (Section 7.1); that RTT is what separates PAL latency
// from end-to-end query latency in Table 1.
package netsim

import (
	"time"

	"flicker/internal/simtime"
)

// Link is a bidirectional network path with fixed RTT and optional
// per-byte serialization cost.
type Link struct {
	clock *simtime.Clock
	// RTT is the round-trip time; one-way sends charge RTT/2.
	RTT time.Duration
	// PerByte charges serialization/transfer per payload byte (zero for a
	// pure-latency link).
	PerByte time.Duration
}

// NewLink creates a link on the given clock.
func NewLink(clock *simtime.Clock, rtt time.Duration, perByte time.Duration) *Link {
	return &Link{clock: clock, RTT: rtt, PerByte: perByte}
}

// PaperLink returns the evaluation-section link: 9.45 ms average RTT.
func PaperLink(clock *simtime.Clock) *Link {
	return NewLink(clock, simtime.FromMillis(9.45), 0)
}

// Send delivers a payload one way, charging half the RTT plus transfer
// time, and returns a copy of the payload (as the remote end receives it).
func (l *Link) Send(payload []byte) []byte {
	l.clock.Advance(l.RTT/2+time.Duration(len(payload))*l.PerByte, "net.send")
	out := make([]byte, len(payload))
	copy(out, payload)
	return out
}

// RoundTrip models a request/response exchange: request out, handler runs,
// response back. It returns the handler's response bytes.
func (l *Link) RoundTrip(request []byte, handle func(req []byte) []byte) []byte {
	req := l.Send(request)
	resp := handle(req)
	return l.Send(resp)
}
