package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flicker/internal/metrics"
	"flicker/internal/simtime"
)

// ErrUnreachable is returned by Port.Call when the destination port does
// not exist or has been closed (a crashed or killed host).
var ErrUnreachable = errors.New("netsim: port unreachable")

// ErrNoHandler is returned by Port.Call when the destination exists but
// has no request handler installed.
var ErrNoHandler = errors.New("netsim: destination has no handler")

// Switch is a multi-endpoint network segment: N named ports exchange
// request/response frames over one shared simulated medium. It is the
// fabric's network — a controller port and one port per host agent — and
// generalizes Link from a fixed pair to a mesh: every call charges the
// same RTT/2-per-leg plus per-byte serialization model, and the switch
// accounts aggregate traffic exactly as a Link does.
//
// A Switch is safe for concurrent calls from any number of goroutines;
// handlers run on the calling goroutine (the simulation's stand-in for the
// remote end's service thread), so a slow handler occupies only its
// caller.
type Switch struct {
	clock   *simtime.Clock
	rtt     time.Duration
	perByte time.Duration

	mu    sync.Mutex
	ports map[string]*Port
	stats LinkStats

	metRoundTrips *metrics.Counter
	metBytes      map[string]*metrics.Counter
	metWire       *metrics.Counter
}

// NewSwitch creates a switch on the given clock with a uniform port-to-port
// RTT and optional per-byte cost.
func NewSwitch(clock *simtime.Clock, rtt, perByte time.Duration) *Switch {
	sw := &Switch{clock: clock, rtt: rtt, perByte: perByte, ports: make(map[string]*Port)}
	sw.Instrument(nil, "")
	return sw
}

// Clock returns the simulated clock the switch charges wire time to.
func (sw *Switch) Clock() *simtime.Clock { return sw.clock }

// Instrument folds the switch's traffic accounting into a registry under
// the given name, using the same metric families as Link (the switch is
// one "link" label).
func (sw *Switch) Instrument(reg *metrics.Registry, name string) {
	if name == "" {
		name = "switch"
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.metRoundTrips = reg.Counter("flicker_net_roundtrips_total",
		"Completed request/response exchanges per link.", "link").With(name).Cell()
	bytes := reg.Counter("flicker_net_bytes_total",
		"Payload bytes carried per link and direction.", "link", "direction")
	sw.metBytes = map[string]*metrics.Counter{
		"sent":     bytes.With(name, "sent").Cell(),
		"received": bytes.With(name, "received").Cell(),
	}
	sw.metWire = reg.Counter("flicker_net_wire_seconds_total",
		"Simulated wire time charged per link.", "link").With(name).Cell()
}

// Stats returns a snapshot of the switch's cumulative traffic.
func (sw *Switch) Stats() LinkStats {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.stats
}

// Attach registers a named endpoint and returns its port. The handler (may
// be nil and installed later with SetHandler) serves requests addressed to
// this port. Attaching a name that is already attached and open is an
// error; a closed port's name may be reused (a restarted host rejoining
// the network).
func (sw *Switch) Attach(name string, handler func(req []byte) []byte) (*Port, error) {
	if name == "" {
		return nil, errors.New("netsim: empty port name")
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if old, ok := sw.ports[name]; ok && !old.isClosed() {
		return nil, fmt.Errorf("netsim: port %q already attached", name)
	}
	p := &Port{sw: sw, name: name, handler: handler}
	sw.ports[name] = p
	return p, nil
}

// lookup resolves an open destination port.
func (sw *Switch) lookup(name string) (*Port, error) {
	sw.mu.Lock()
	p, ok := sw.ports[name]
	sw.mu.Unlock()
	if !ok || p.isClosed() {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, name)
	}
	return p, nil
}

// charge accounts one direction of payload movement.
func (sw *Switch) charge(n int, direction string) {
	charged := sw.clock.Advance(sw.rtt/2+time.Duration(n)*sw.perByte, "net.send")
	sw.mu.Lock()
	if direction == "sent" {
		sw.stats.BytesSent += int64(n)
	} else {
		sw.stats.BytesReceived += int64(n)
	}
	sw.stats.WireTime += charged
	bytes, wire := sw.metBytes[direction], sw.metWire
	sw.mu.Unlock()
	bytes.Add(float64(n))
	wire.Add(metrics.Seconds(charged))
}

// Port is one endpoint on a switch.
type Port struct {
	sw   *Switch
	name string

	mu      sync.Mutex
	handler func(req []byte) []byte
	closed  bool
}

// Name returns the port's address on the switch.
func (p *Port) Name() string { return p.name }

// SetHandler installs (or replaces) the request handler.
func (p *Port) SetHandler(h func(req []byte) []byte) {
	p.mu.Lock()
	p.handler = h
	p.mu.Unlock()
}

// Close detaches the port: subsequent calls to or from it fail with
// ErrUnreachable. Closing models a host crash — calls already executing
// complete (the work ran remotely), but no new frame reaches the port.
func (p *Port) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
}

func (p *Port) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Call performs one request/response exchange with the named destination:
// request out, destination handler runs, response back. Both legs charge
// wire time and are accounted from the caller's perspective (request =
// sent, response = received). The returned response is an owned exact-size
// frame; steady-state callers use CallAppend to reuse a reply buffer
// instead.
func (p *Port) Call(to string, request []byte) ([]byte, error) {
	return p.CallAppend(to, request, nil)
}

// CallAppend is Call with a caller-supplied reply buffer: the response is
// appended to buf[:0] and the filled slice returned, so a caller in a loop
// (the fabric's frame path) recycles one buffer across exchanges instead
// of allocating an owned copy per call. A nil buf behaves exactly like
// Call. The request is still copied before the handler runs — the
// destination owns its copy for the duration of the call — so the caller's
// request buffer is reusable as soon as CallAppend returns.
func (p *Port) CallAppend(to string, request, buf []byte) ([]byte, error) {
	if p.isClosed() {
		return nil, fmt.Errorf("%w: %s (local port closed)", ErrUnreachable, p.name)
	}
	dst, err := p.sw.lookup(to)
	if err != nil {
		return nil, err
	}
	dst.mu.Lock()
	handler := dst.handler
	dst.mu.Unlock()
	if handler == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoHandler, to)
	}
	p.sw.charge(len(request), "sent")
	req := make([]byte, len(request))
	copy(req, request)
	resp := handler(req)
	// A destination that died while serving cannot answer: the response
	// frame is lost on the floor, exactly what the controller's failover
	// path must tolerate.
	if dst.isClosed() {
		return nil, fmt.Errorf("%w: %s (died mid-call)", ErrUnreachable, to)
	}
	p.sw.charge(len(resp), "received")
	out := append(buf[:0], resp...)
	p.sw.mu.Lock()
	p.sw.stats.RoundTrips++
	rt := p.sw.metRoundTrips
	p.sw.mu.Unlock()
	rt.Inc()
	return out, nil
}
