package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flicker/internal/metrics"
	"flicker/internal/simtime"
)

func TestSendChargesHalfRTT(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 10*time.Millisecond, 0)
	out := l.Send([]byte("ping"))
	if !bytes.Equal(out, []byte("ping")) {
		t.Fatal("payload mangled")
	}
	if clock.Now() != 5*time.Millisecond {
		t.Fatalf("one-way send charged %v, want 5ms", clock.Now())
	}
}

func TestSendCopiesPayload(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, time.Millisecond, 0)
	in := []byte("mutable")
	out := l.Send(in)
	in[0] = 'X'
	if out[0] == 'X' {
		t.Fatal("Send aliased the caller's buffer")
	}
}

func TestPerByteCost(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 0, time.Microsecond)
	l.Send(make([]byte, 1000))
	if clock.Now() != time.Millisecond {
		t.Fatalf("1000 bytes at 1us/B charged %v", clock.Now())
	}
}

func TestRoundTrip(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 8*time.Millisecond, 0)
	resp := l.RoundTrip([]byte("query"), func(req []byte) []byte {
		clock.Advance(2*time.Millisecond, "server.work")
		return append([]byte("re:"), req...)
	})
	if string(resp) != "re:query" {
		t.Fatalf("resp = %q", resp)
	}
	if clock.Now() != 10*time.Millisecond { // 4 out + 2 work + 4 back
		t.Fatalf("round trip consumed %v, want 10ms", clock.Now())
	}
}

func TestLinkStatsAccounting(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 10*time.Millisecond, 0)
	l.RoundTrip([]byte("1234"), func(req []byte) []byte {
		return []byte("response!") // 9 bytes back
	})
	l.Send([]byte("xy"))
	st := l.Stats()
	if st.RoundTrips != 1 {
		t.Errorf("RoundTrips = %d, want 1", st.RoundTrips)
	}
	if st.BytesSent != 4+2 || st.BytesReceived != 9 {
		t.Errorf("bytes = %d sent / %d received, want 6 / 9", st.BytesSent, st.BytesReceived)
	}
	// Three one-way transfers at RTT/2 each.
	if st.WireTime != 15*time.Millisecond {
		t.Errorf("WireTime = %v, want 15ms", st.WireTime)
	}
}

func TestLinkMetricsRegistration(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 4*time.Millisecond, 0)
	reg := metrics.NewRegistry()
	l.Instrument(reg, "verifier")
	l.RoundTrip([]byte("abc"), func(req []byte) []byte { return req })

	rts := reg.Counter("flicker_net_roundtrips_total", "", "link")
	if got := rts.With("verifier").Value(); got != 1 {
		t.Errorf("roundtrips counter = %v, want 1", got)
	}
	bytesC := reg.Counter("flicker_net_bytes_total", "", "link", "direction")
	if got := bytesC.With("verifier", "sent").Value(); got != 3 {
		t.Errorf("sent bytes counter = %v, want 3", got)
	}
	if got := bytesC.With("verifier", "received").Value(); got != 3 {
		t.Errorf("received bytes counter = %v, want 3", got)
	}
	wire := reg.Counter("flicker_net_wire_seconds_total", "", "link")
	if got := wire.With("verifier").Value(); got != 0.004 {
		t.Errorf("wire seconds = %v, want 0.004", got)
	}
}

func TestPaperLink(t *testing.T) {
	clock := simtime.New()
	l := PaperLink(clock)
	l.Send(nil)
	l.Send(nil)
	// Full RTT after two one-way sends: the paper's 9.45 ms average ping.
	if got := simtime.Millis(clock.Now()); got < 9.44 || got > 9.46 {
		t.Fatalf("RTT = %.3f ms, want 9.45", got)
	}
}

// TestLinkConcurrentRoundTripsRace is the -race hammer for the fabric's
// usage pattern: many goroutines sharing one link. Counts must come out
// exact — the link serializes its accounting, not just avoids corruption.
func TestLinkConcurrentRoundTripsRace(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, time.Millisecond, time.Microsecond)
	reg := metrics.NewRegistry()
	l.Instrument(reg, "hammer")
	const (
		workers = 8
		perW    = 100
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				resp := l.RoundTrip([]byte("rq"), func(req []byte) []byte {
					return append(req, []byte("-ok")...)
				})
				if string(resp) != "rq-ok" {
					t.Errorf("resp = %q", resp)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.RoundTrips != workers*perW {
		t.Fatalf("RoundTrips = %d, want %d", st.RoundTrips, workers*perW)
	}
	if st.BytesSent != workers*perW*2 || st.BytesReceived != workers*perW*5 {
		t.Fatalf("bytes = %d/%d, want %d/%d",
			st.BytesSent, st.BytesReceived, workers*perW*2, workers*perW*5)
	}
}

func TestSwitchCallChargesBothLegs(t *testing.T) {
	clock := simtime.New()
	sw := NewSwitch(clock, 8*time.Millisecond, 0)
	a, err := sw.Attach("ctrl", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Attach("host-0", func(req []byte) []byte {
		clock.Advance(2*time.Millisecond, "host.work")
		return append([]byte("re:"), req...)
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := a.Call("host-0", []byte("query"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:query" {
		t.Fatalf("resp = %q", resp)
	}
	if clock.Now() != 10*time.Millisecond { // 4 out + 2 work + 4 back
		t.Fatalf("call consumed %v, want 10ms", clock.Now())
	}
	st := sw.Stats()
	if st.RoundTrips != 1 || st.BytesSent != 5 || st.BytesReceived != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSwitchUnreachableAndReuse(t *testing.T) {
	sw := NewSwitch(simtime.New(), time.Millisecond, 0)
	a, err := sw.Attach("ctrl", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("ghost", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to unattached port = %v, want ErrUnreachable", err)
	}
	h, err := sw.Attach("host-0", func(req []byte) []byte { return req })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Attach("host-0", nil); err == nil {
		t.Fatal("duplicate attach of an open port succeeded")
	}
	if _, err := a.Call("host-0", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A crashed (closed) host is unreachable, and its name can be reused by
	// a restarted instance.
	h.Close()
	if _, err := a.Call("host-0", []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to closed port = %v, want ErrUnreachable", err)
	}
	if _, err := sw.Attach("host-0", func(req []byte) []byte { return []byte("v2") }); err != nil {
		t.Fatalf("reattach after close: %v", err)
	}
	resp, err := a.Call("host-0", nil)
	if err != nil || string(resp) != "v2" {
		t.Fatalf("restarted port call = %q, %v", resp, err)
	}
	// No handler installed: distinct error.
	if _, err := sw.Attach("mute", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("mute", nil); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("call to handlerless port = %v, want ErrNoHandler", err)
	}
}

func TestSwitchDiedMidCall(t *testing.T) {
	sw := NewSwitch(simtime.New(), time.Millisecond, 0)
	a, _ := sw.Attach("ctrl", nil)
	var victim *Port
	victim, err := sw.Attach("host-0", func(req []byte) []byte {
		victim.Close() // the host dies while serving
		return []byte("lost reply")
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("host-0", []byte("rq")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("mid-call death = %v, want ErrUnreachable", err)
	}
}

// TestSwitchConcurrentCallsRace hammers one switch from many ports at once.
func TestSwitchConcurrentCallsRace(t *testing.T) {
	sw := NewSwitch(simtime.New(), time.Millisecond, 0)
	const hosts = 4
	for i := 0; i < hosts; i++ {
		if _, err := sw.Attach(fmt.Sprintf("host-%d", i), func(req []byte) []byte {
			return append([]byte("ok:"), req...)
		}); err != nil {
			t.Fatal(err)
		}
	}
	const (
		workers = 8
		perW    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		port, err := sw.Attach(fmt.Sprintf("caller-%d", w), nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p *Port, w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				resp, err := p.Call(fmt.Sprintf("host-%d", (w+i)%hosts), []byte("x"))
				if err != nil || string(resp) != "ok:x" {
					t.Errorf("call: %q, %v", resp, err)
					return
				}
			}
		}(port, w)
	}
	wg.Wait()
	if st := sw.Stats(); st.RoundTrips != workers*perW {
		t.Fatalf("RoundTrips = %d, want %d", st.RoundTrips, workers*perW)
	}
}

func TestSwitchCallAppendReusesBuffer(t *testing.T) {
	sw := NewSwitch(simtime.New(), time.Millisecond, 0)
	a, err := sw.Attach("ctrl", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Attach("host-0", func(req []byte) []byte {
		return append([]byte("re:"), req...)
	}); err != nil {
		t.Fatal(err)
	}

	// A buffer with spare capacity is reused in place: the reply lands in
	// the same backing array, sliced from zero.
	buf := make([]byte, 3, 64)
	resp, err := a.CallAppend("host-0", []byte("query"), buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:query" {
		t.Fatalf("resp = %q", resp)
	}
	if &resp[0] != &buf[:1][0] {
		t.Fatal("CallAppend allocated despite sufficient capacity")
	}

	// Nil buffer degenerates to Call: a freshly owned reply.
	resp, err = a.CallAppend("host-0", []byte("q2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:q2" {
		t.Fatalf("nil-buf reply = %q", resp)
	}

	// The reply is a copy, never an alias of the handler's return value:
	// mutating the caller's view does not reach the remote side.
	handlerOwned := []byte("stable")
	if _, err := sw.Attach("host-1", func([]byte) []byte { return handlerOwned }); err != nil {
		t.Fatal(err)
	}
	resp, err = a.CallAppend("host-1", nil, make([]byte, 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	resp[0] = 'X'
	if handlerOwned[0] == 'X' {
		t.Fatal("CallAppend aliased the handler's buffer across the simulated wire")
	}
}
