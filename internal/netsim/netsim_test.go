package netsim

import (
	"bytes"
	"testing"
	"time"

	"flicker/internal/simtime"
)

func TestSendChargesHalfRTT(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 10*time.Millisecond, 0)
	out := l.Send([]byte("ping"))
	if !bytes.Equal(out, []byte("ping")) {
		t.Fatal("payload mangled")
	}
	if clock.Now() != 5*time.Millisecond {
		t.Fatalf("one-way send charged %v, want 5ms", clock.Now())
	}
}

func TestSendCopiesPayload(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, time.Millisecond, 0)
	in := []byte("mutable")
	out := l.Send(in)
	in[0] = 'X'
	if out[0] == 'X' {
		t.Fatal("Send aliased the caller's buffer")
	}
}

func TestPerByteCost(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 0, time.Microsecond)
	l.Send(make([]byte, 1000))
	if clock.Now() != time.Millisecond {
		t.Fatalf("1000 bytes at 1us/B charged %v", clock.Now())
	}
}

func TestRoundTrip(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 8*time.Millisecond, 0)
	resp := l.RoundTrip([]byte("query"), func(req []byte) []byte {
		clock.Advance(2*time.Millisecond, "server.work")
		return append([]byte("re:"), req...)
	})
	if string(resp) != "re:query" {
		t.Fatalf("resp = %q", resp)
	}
	if clock.Now() != 10*time.Millisecond { // 4 out + 2 work + 4 back
		t.Fatalf("round trip consumed %v, want 10ms", clock.Now())
	}
}

func TestPaperLink(t *testing.T) {
	clock := simtime.New()
	l := PaperLink(clock)
	l.Send(nil)
	l.Send(nil)
	// Full RTT after two one-way sends: the paper's 9.45 ms average ping.
	if got := simtime.Millis(clock.Now()); got < 9.44 || got > 9.46 {
		t.Fatalf("RTT = %.3f ms, want 9.45", got)
	}
}
