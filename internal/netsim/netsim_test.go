package netsim

import (
	"bytes"
	"testing"
	"time"

	"flicker/internal/metrics"
	"flicker/internal/simtime"
)

func TestSendChargesHalfRTT(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 10*time.Millisecond, 0)
	out := l.Send([]byte("ping"))
	if !bytes.Equal(out, []byte("ping")) {
		t.Fatal("payload mangled")
	}
	if clock.Now() != 5*time.Millisecond {
		t.Fatalf("one-way send charged %v, want 5ms", clock.Now())
	}
}

func TestSendCopiesPayload(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, time.Millisecond, 0)
	in := []byte("mutable")
	out := l.Send(in)
	in[0] = 'X'
	if out[0] == 'X' {
		t.Fatal("Send aliased the caller's buffer")
	}
}

func TestPerByteCost(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 0, time.Microsecond)
	l.Send(make([]byte, 1000))
	if clock.Now() != time.Millisecond {
		t.Fatalf("1000 bytes at 1us/B charged %v", clock.Now())
	}
}

func TestRoundTrip(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 8*time.Millisecond, 0)
	resp := l.RoundTrip([]byte("query"), func(req []byte) []byte {
		clock.Advance(2*time.Millisecond, "server.work")
		return append([]byte("re:"), req...)
	})
	if string(resp) != "re:query" {
		t.Fatalf("resp = %q", resp)
	}
	if clock.Now() != 10*time.Millisecond { // 4 out + 2 work + 4 back
		t.Fatalf("round trip consumed %v, want 10ms", clock.Now())
	}
}

func TestLinkStatsAccounting(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 10*time.Millisecond, 0)
	l.RoundTrip([]byte("1234"), func(req []byte) []byte {
		return []byte("response!") // 9 bytes back
	})
	l.Send([]byte("xy"))
	st := l.Stats()
	if st.RoundTrips != 1 {
		t.Errorf("RoundTrips = %d, want 1", st.RoundTrips)
	}
	if st.BytesSent != 4+2 || st.BytesReceived != 9 {
		t.Errorf("bytes = %d sent / %d received, want 6 / 9", st.BytesSent, st.BytesReceived)
	}
	// Three one-way transfers at RTT/2 each.
	if st.WireTime != 15*time.Millisecond {
		t.Errorf("WireTime = %v, want 15ms", st.WireTime)
	}
}

func TestLinkMetricsRegistration(t *testing.T) {
	clock := simtime.New()
	l := NewLink(clock, 4*time.Millisecond, 0)
	reg := metrics.NewRegistry()
	l.Instrument(reg, "verifier")
	l.RoundTrip([]byte("abc"), func(req []byte) []byte { return req })

	rts := reg.Counter("flicker_net_roundtrips_total", "", "link")
	if got := rts.With("verifier").Value(); got != 1 {
		t.Errorf("roundtrips counter = %v, want 1", got)
	}
	bytesC := reg.Counter("flicker_net_bytes_total", "", "link", "direction")
	if got := bytesC.With("verifier", "sent").Value(); got != 3 {
		t.Errorf("sent bytes counter = %v, want 3", got)
	}
	if got := bytesC.With("verifier", "received").Value(); got != 3 {
		t.Errorf("received bytes counter = %v, want 3", got)
	}
	wire := reg.Counter("flicker_net_wire_seconds_total", "", "link")
	if got := wire.With("verifier").Value(); got != 0.004 {
		t.Errorf("wire seconds = %v, want 0.004", got)
	}
}

func TestPaperLink(t *testing.T) {
	clock := simtime.New()
	l := PaperLink(clock)
	l.Send(nil)
	l.Send(nil)
	// Full RTT after two one-way sends: the paper's 9.45 ms average ping.
	if got := simtime.Millis(clock.Now()); got < 9.44 || got > 9.46 {
		t.Fatalf("RTT = %.3f ms, want 9.45", got)
	}
}
