// Package bench regenerates every table and figure of the paper's
// evaluation (Section 7) from the platform simulation. Each experiment
// returns a structured Table whose rows carry the paper's reported value
// and the value measured from the simulation, so both the benchmark suite
// (bench_test.go) and the cmd/benchtables tool print the same comparison.
package bench

import (
	"fmt"
	"strings"
	"time"

	"flicker/internal/apps/rootkit"
	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/netsim"
	"flicker/internal/pal"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

// Row is one line of a reproduced table: the paper's number next to ours.
type Row struct {
	Label    string
	Paper    float64
	Measured float64
	Unit     string
}

// Table is one reproduced experiment.
type Table struct {
	ID    string
	Title string
	Rows  []Row
	Notes string
}

// Format renders the table for terminal output.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "  %-38s %12s %12s  %s\n", "", "paper", "measured", "unit")
	for _, r := range t.Rows {
		paper := fmtVal(r.Paper)
		if r.Paper == 0 {
			paper = "-"
		}
		fmt.Fprintf(&b, "  %-38s %12s %12s  %s\n", r.Label, paper, fmtVal(r.Measured), r.Unit)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", t.Notes)
	}
	return b.String()
}

// fmtVal prints small values (fractions) with more precision than big ones
// (milliseconds/seconds).
func fmtVal(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	if av != 0 && av < 10 {
		return fmt.Sprintf("%.2f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// MaxRelError returns the worst relative deviation from the paper across
// rows that have a paper value, as a fraction.
func (t *Table) MaxRelError() float64 {
	worst := 0.0
	for _, r := range t.Rows {
		if r.Paper == 0 {
			continue
		}
		rel := (r.Measured - r.Paper) / r.Paper
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

// paperModules is the module load-out that makes the measurable kernel
// image total ~1.833 MB, so hashing it at the calibrated CPU rate costs
// Table 1's 22.0 ms.
var paperModules = []struct {
	Name string
	Size int
}{
	{"ext3", 98304},
	{"e1000", 131072},
	{"tpm_tis", 29813},
}

// hostPlatform boots the standard Table 1 host: dc5750-like platform with
// the calibrated module load-out, a Privacy CA, and a quote daemon.
func hostPlatform(seed string) (*core.Platform, *attest.Daemon, *attest.PrivacyCA, error) {
	p, err := core.NewPlatform(core.PlatformConfig{Seed: seed, MemSize: 64 << 20})
	if err != nil {
		return nil, nil, nil, err
	}
	for _, m := range paperModules {
		if _, err := p.Kernel.LoadModule(m.Name, m.Size); err != nil {
			return nil, nil, nil, err
		}
	}
	ca, err := attest.NewPrivacyCA([]byte("bench-ca"), 0)
	if err != nil {
		return nil, nil, nil, err
	}
	tqd, err := attest.NewDaemon(p.OSTPM(), tpm.Digest{}, ca, "bench-host")
	if err != nil {
		return nil, nil, nil, err
	}
	return p, tqd, ca, nil
}

// ms converts a duration to milliseconds for table rows.
func ms(d time.Duration) float64 { return simtime.Millis(d) }

// sumLabel totals one charge label over a charge list.
func sumLabel(charges []simtime.Charge, label string) time.Duration {
	var d time.Duration
	for _, c := range charges {
		if c.Label == label {
			d += c.Duration
		}
	}
	return d
}

// paperRTTLink builds the 9.45 ms evaluation link, accounted in the
// platform's metrics registry as "verifier".
func paperRTTLink(p *core.Platform) *netsim.Link {
	l := netsim.PaperLink(p.Clock)
	l.Instrument(p.Metrics, "verifier")
	return l
}

// detectorPAL and detectionInput are shared by the multicore ablation.
func detectorPAL() pal.PAL { return rootkit.NewDetectorPAL() }

func detectionInput(regions [][2]uint32) []byte { return rootkit.EncodeRegions(regions) }
