package bench

import (
	"fmt"
	"time"

	"flicker/internal/apps/distcomp"
	"flicker/internal/apps/rootkit"
	"flicker/internal/core"
	"flicker/internal/simtime"
)

// Table1RootkitBreakdown reproduces Table 1: the rootkit detector's
// per-operation overhead on the Broadcom platform, plus the end-to-end
// remote query latency (Section 7.2 reports 1.02 s average).
func Table1RootkitBreakdown() (*Table, error) {
	p, tqd, ca, err := hostPlatform("bench-t1")
	if err != nil {
		return nil, err
	}
	host := rootkit.NewHost(p, tqd)
	admin := rootkit.NewAdmin(ca.PublicKey(), []byte("bench-admin"))
	known, err := rootkit.KnownGoodFor(p.Kernel)
	if err != nil {
		return nil, err
	}
	admin.AddKnownGood(known)
	link := paperRTTLink(p)

	start := p.Clock.Now()
	out := admin.Query(link, host, p.Kernel.MeasurableRegions())
	if out.Err != nil {
		return nil, fmt.Errorf("bench: table 1 query: %w", out.Err)
	}
	if !out.Clean || !out.Verified {
		return nil, fmt.Errorf("bench: table 1 query returned %+v", out)
	}
	total := p.Clock.Now() - start
	charges := p.Clock.ChargesSince(start)

	skinit := sumLabel(charges, "cpu.skinit") + sumLabel(charges, "tpm.hashdata")
	extend := sumLabel(charges, "tpm.extend")
	hash := sumLabel(charges, "cpu.hash")
	quote := sumLabel(charges, "tpm.quote")

	return &Table{
		ID:    "Table 1",
		Title: "Rootkit detector overhead breakdown (Broadcom TPM)",
		Rows: []Row{
			{"SKINIT", 15.4, ms(skinit), "ms"},
			{"PCR Extend (all session extends)", 1.2, ms(extend) / float64(max(1, countLabel(charges, "tpm.extend"))), "ms"},
			{"Hash of Kernel", 22.0, ms(hash), "ms"},
			{"TPM Quote", 972.7, ms(quote), "ms"},
			{"Total Query Latency", 1022.7, ms(total), "ms"},
		},
		Notes: "paper's PCR Extend row is per-extend; session performs several",
	}, nil
}

func countLabel(charges []simtime.Charge, label string) int {
	n := 0
	for _, c := range charges {
		if c.Label == label {
			n++
		}
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table2SkinitVsSize reproduces Table 2: SKINIT latency against SLB size,
// measured by launching real SLBs of each size on fresh machines.
func Table2SkinitVsSize() (*Table, error) {
	paper := map[int]float64{0: 0.0, 4: 11.9, 16: 45.0, 32: 89.2, 64: 177.5}
	t := &Table{
		ID:    "Table 2",
		Title: "SKINIT latency vs SLB size (Broadcom TPM)",
		Notes: "64 KB row uses 65532 bytes (the 16-bit length field's practical max); 0 KB row is the CPU state change alone",
	}
	for _, kb := range []int{0, 4, 16, 32, 64} {
		var measured time.Duration
		if kb == 0 {
			measured = simtime.ProfileBroadcom().CPUStateChange
		} else {
			// Raw machine-level launch with a synthetic SLB of exactly the
			// requested size, as the paper's microbenchmark did.
			p, err := core.NewPlatform(core.PlatformConfig{Seed: fmt.Sprintf("bench-t2-%d", kb)})
			if err != nil {
				return nil, err
			}
			size := kb * 1024
			if size > 65535 {
				size = 64*1024 - 4
			}
			base, err := p.Kernel.KAlloc(64*1024, 64*1024)
			if err != nil {
				return nil, err
			}
			raw := make([]byte, size)
			raw[0] = byte(size)
			raw[1] = byte(size >> 8)
			raw[2] = 4 // entry point just past the header
			if err := p.Machine.Mem.Write(base, raw); err != nil {
				return nil, err
			}
			for _, c := range p.Machine.Cores()[1:] {
				if err := p.Kernel.OfflineCore(c.ID); err != nil {
					return nil, err
				}
				if err := p.Machine.SendINITIPI(c.ID); err != nil {
					return nil, err
				}
			}
			start := p.Clock.Now()
			ll, err := p.Machine.SKINIT(0, base)
			if err != nil {
				return nil, err
			}
			measured = p.Clock.Now() - start
			if err := ll.End(); err != nil {
				return nil, err
			}
		}
		t.Rows = append(t.Rows, Row{fmt.Sprintf("%d KB SLB", kb), paper[kb], ms(measured), "ms"})
	}
	return t, nil
}

// Table3SystemImpact reproduces Table 3: Linux kernel build time with the
// rootkit detector running at various periods. scale shrinks the experiment
// (1.0 = the paper's full 7:22.6 build; tests use a smaller scale).
func Table3SystemImpact(scale float64) (*Table, error) {
	if scale <= 0 {
		scale = 1
	}
	buildWork := time.Duration(float64(442600*time.Millisecond) * scale)
	periods := []struct {
		label  string
		period time.Duration
		paper  float64 // seconds, from Table 3
	}{
		{"No Detection", 0, 442.6},
		{"5:00", 300 * time.Second, 441.4},
		{"3:00", 180 * time.Second, 441.4},
		{"2:00", 120 * time.Second, 441.8},
		{"1:00", 60 * time.Second, 441.9},
		{"0:30", 30 * time.Second, 442.6},
	}
	t := &Table{
		ID:    "Table 3",
		Title: "Kernel build time under periodic rootkit detection",
		Notes: fmt.Sprintf("simulated at scale %.2fx of the paper's 7:22.6 build; ±0.3%% deterministic noise", scale),
	}
	for i, pc := range periods {
		p, err := core.NewPlatform(core.PlatformConfig{
			Seed:          fmt.Sprintf("bench-t3-%d", i),
			MemSize:       64 << 20,
			NoiseFraction: 0.003,
		})
		if err != nil {
			return nil, err
		}
		for _, m := range paperModules {
			if _, err := p.Kernel.LoadModule(m.Name, m.Size); err != nil {
				return nil, err
			}
		}
		regions := p.Kernel.MeasurableRegions()
		p.Kernel.Spawn("make", buildWork)
		start := p.Clock.Now()
		period := time.Duration(float64(pc.period) * scale)
		for {
			var slice time.Duration = buildWork
			if period > 0 {
				slice = period
			}
			if p.Kernel.Run(slice) == 0 {
				break
			}
			if period > 0 {
				res, err := p.RunSession(rootkit.NewDetectorPAL(), core.SessionOptions{
					Input: rootkit.EncodeRegions(regions),
				})
				if err != nil || res.PALError != nil {
					return nil, fmt.Errorf("bench: table 3 session: %v %v", err, res.PALError)
				}
			}
		}
		elapsed := p.Clock.Now() - start
		// Scale the measurement back up to paper units for comparison.
		t.Rows = append(t.Rows, Row{pc.label, pc.paper, elapsed.Seconds() / scale, "s"})
	}
	return t, nil
}

// Table4DistcompOverhead reproduces Table 4: the distributed-computing
// client's per-session overhead versus application work, measured from real
// continuation sessions of the factoring PAL.
func Table4DistcompOverhead() (*Table, error) {
	t := &Table{
		ID:    "Table 4",
		Title: "Distributed computing session overhead vs application work",
		Notes: "overhead = (SKINIT + Unseal + other fixed cost) / session total",
	}
	paperOverhead := map[int]float64{1000: 47, 2000: 30, 4000: 18, 8000: 10}
	var skinitMs, unsealMs float64
	for _, workMs := range []int{1000, 2000, 4000, 8000} {
		p, err := core.NewPlatform(core.PlatformConfig{Seed: fmt.Sprintf("bench-t4-%d", workMs)})
		if err != nil {
			return nil, err
		}
		work := time.Duration(workMs) * time.Millisecond
		// One init session to produce the sealed key and checkpoint.
		unit := distcomp.State{UnitID: 1, N: 1_000_003 * 2, Next: 2, Hi: 1 << 62}
		initRes, err := p.RunSession(distcomp.NewFactorPAL(), core.SessionOptions{
			Input:    distcomp.EncodeRequest(&distcomp.Request{Init: true, Unit: unit}),
			TwoStage: true,
		})
		if err != nil || initRes.PALError != nil {
			return nil, fmt.Errorf("bench: table 4 init: %v %v", err, initRes.PALError)
		}
		resp, err := distcomp.DecodeResponse(initRes.Outputs)
		if err != nil {
			return nil, err
		}
		// One continuation session with the requested work budget.
		start := p.Clock.Now()
		contRes, err := p.RunSession(distcomp.NewFactorPAL(), core.SessionOptions{
			Input: distcomp.EncodeRequest(&distcomp.Request{
				SealedKey:  resp.SealedKey,
				Envelope:   resp.Envelope,
				WorkBudget: work,
			}),
			TwoStage: true,
		})
		if err != nil || contRes.PALError != nil {
			return nil, fmt.Errorf("bench: table 4 continue: %v %v", err, contRes.PALError)
		}
		charges := p.Clock.ChargesSince(start)
		total := contRes.Duration()
		app := sumLabel(charges, "app.work")
		overheadFrac := 100 * float64(total-app) / float64(total)
		skinitMs = ms(sumLabel(charges, "cpu.skinit") + sumLabel(charges, "tpm.hashdata"))
		unsealMs = ms(sumLabel(charges, "tpm.unseal"))
		t.Rows = append(t.Rows, Row{
			fmt.Sprintf("Flicker overhead @ %d ms work", workMs),
			paperOverhead[workMs], overheadFrac, "%",
		})
	}
	t.Rows = append(t.Rows,
		Row{"SKINIT (per session)", 14.3, skinitMs, "ms"},
		Row{"Unseal (per session)", 898.3, unsealMs, "ms"},
	)
	return t, nil
}
