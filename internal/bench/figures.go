package bench

import (
	"bytes"
	"fmt"
	"time"

	"flicker/internal/apps/ca"
	"flicker/internal/apps/distcomp"
	"flicker/internal/apps/sshauth"
	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

// Figure8Efficiency reproduces Figure 8: Flicker efficiency versus user
// latency, against 3/5/7-way replication. The Flicker overhead constant is
// MEASURED from a real continuation session, not assumed.
func Figure8Efficiency() (*Table, error) {
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "bench-f8"})
	if err != nil {
		return nil, err
	}
	// Measure the fixed per-session overhead with a minimal-work session.
	unit := distcomp.State{UnitID: 1, N: 15, Next: 2, Hi: 1 << 62}
	initRes, err := p.RunSession(distcomp.NewFactorPAL(), core.SessionOptions{
		Input:    distcomp.EncodeRequest(&distcomp.Request{Init: true, Unit: unit}),
		TwoStage: true,
	})
	if err != nil || initRes.PALError != nil {
		return nil, fmt.Errorf("bench: fig 8 init: %v %v", err, initRes.PALError)
	}
	resp, err := distcomp.DecodeResponse(initRes.Outputs)
	if err != nil {
		return nil, err
	}
	contRes, err := p.RunSession(distcomp.NewFactorPAL(), core.SessionOptions{
		Input: distcomp.EncodeRequest(&distcomp.Request{
			SealedKey: resp.SealedKey, Envelope: resp.Envelope, WorkBudget: time.Millisecond,
		}),
		TwoStage: true,
	})
	if err != nil || contRes.PALError != nil {
		return nil, fmt.Errorf("bench: fig 8 continue: %v %v", err, contRes.PALError)
	}
	overhead := contRes.Duration() - time.Millisecond

	// Paper's Figure 8 curve (read off the plot; the crossover claims in
	// the text are what we verify: 2 s beats 3-way replication).
	paperCurve := map[int]float64{
		1: 0.09, 2: 0.54, 3: 0.70, 4: 0.77, 5: 0.82,
		6: 0.85, 7: 0.87, 8: 0.89, 9: 0.90, 10: 0.91,
	}
	t := &Table{
		ID:    "Figure 8",
		Title: fmt.Sprintf("Flicker vs replication efficiency (measured overhead %.1f ms/session)", ms(overhead)),
		Notes: "replication constants: 3-way 0.33, 5-way 0.20, 7-way 0.14; paper values read off the plot",
	}
	for l := 1; l <= 10; l++ {
		lat := time.Duration(l) * time.Second
		t.Rows = append(t.Rows, Row{
			fmt.Sprintf("Flicker efficiency @ %d s latency", l),
			paperCurve[l],
			distcomp.FlickerEfficiency(lat, overhead),
			"fraction",
		})
	}
	for _, k := range []int{3, 5, 7} {
		t.Rows = append(t.Rows, Row{
			fmt.Sprintf("%d-way replication efficiency", k),
			1 / float64(k),
			distcomp.ReplicationEfficiency(k),
			"fraction",
		})
	}
	return t, nil
}

// Figure9SSH reproduces Figure 9: the SSH server's two PALs with their
// per-operation breakdown, measured from real sessions.
func Figure9SSH() (*Table, *Table, error) {
	p, tqd, ca2, err := hostPlatform("bench-f9")
	if err != nil {
		return nil, nil, err
	}
	_ = ca2
	srv := sshauth.NewServer(p, tqd)
	srv.AddUser("alice", "benchmark-password", "saltsalt")
	client := sshauth.NewClient(ca2.PublicKey(), []byte("bench-client"))

	// --- PAL 1: setup ---
	start := p.Clock.Now()
	nonce := client.FreshNonce()
	sr, err := srv.Setup(nonce)
	if err != nil {
		return nil, nil, err
	}
	if err := client.TrustSetup(sr, nonce); err != nil {
		return nil, nil, err
	}
	charges := p.Clock.ChargesSince(start)
	skinit1 := sumLabel(charges, "cpu.skinit") + sumLabel(charges, "tpm.hashdata")
	keygen := sumLabel(charges, "cpu.keygen")
	seal := sumLabel(charges, "tpm.seal")
	quote := sumLabel(charges, "tpm.quote")
	var pal1Total time.Duration
	for _, c := range charges {
		if c.Label != "tpm.quote" && c.Label != "net.send" {
			pal1Total += c.Duration
		}
	}
	t1 := &Table{
		ID:    "Figure 9a",
		Title: "SSH Setup PAL (PAL 1) breakdown",
		Rows: []Row{
			{"SKINIT", 14.3, ms(skinit1), "ms"},
			{"Key Gen", 185.7, ms(keygen), "ms"},
			{"Seal", 10.2, ms(seal), "ms"},
			{"Total Time (PAL side)", 217.1, ms(pal1Total), "ms"},
			{"TPM Quote (outside PAL)", 949, ms(quote), "ms"},
		},
		Notes: "paper's quote (949 ms) happens after the session on the untrusted OS",
	}

	// --- PAL 2: login ---
	loginNonce := srv.FreshNonce()
	ct, err := client.Encrypt("benchmark-password", loginNonce)
	if err != nil {
		return nil, nil, err
	}
	start = p.Clock.Now()
	if err := srv.Login("alice", ct, loginNonce); err != nil {
		return nil, nil, err
	}
	total2 := p.Clock.Now() - start
	charges = p.Clock.ChargesSince(start)
	t2 := &Table{
		ID:    "Figure 9b",
		Title: "SSH Login PAL (PAL 2) breakdown",
		Rows: []Row{
			{"SKINIT", 14.3, ms(sumLabel(charges, "cpu.skinit") + sumLabel(charges, "tpm.hashdata")), "ms"},
			{"Unseal", 905.4, ms(sumLabel(charges, "tpm.unseal")), "ms"},
			{"Decrypt", 4.6, ms(sumLabel(charges, "cpu.rsadecrypt")), "ms"},
			{"Total Time", 937.6, ms(total2), "ms"},
		},
		Notes: "our Broadcom profile models unseal at 898.3 ms (Table 4's figure for the same chip)",
	}
	return t1, t2, nil
}

// CASignLatency reproduces Section 7.4.2: the CA's certificate-signing
// session, 906.2 ms average, dominated by the TPM unseal, with the RSA
// signature at ~4.7 ms.
func CASignLatency() (*Table, error) {
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "bench-ca"})
	if err != nil {
		return nil, err
	}
	authority := ca.NewAuthority(p, &ca.Policy{AllowedSuffixes: []string{".bench"}})
	if err := authority.Init(); err != nil {
		return nil, err
	}
	key, err := palcrypto.GenerateRSAKey(palcrypto.NewPRNG([]byte("bench-csr")), 512)
	if err != nil {
		return nil, err
	}
	csr := &ca.CSR{Subject: "host.bench", PublicKey: palcrypto.MarshalPublicKey(&key.RSAPublicKey)}
	start := p.Clock.Now()
	cert, err := authority.Sign(csr)
	if err != nil {
		return nil, err
	}
	total := p.Clock.Now() - start
	charges := p.Clock.ChargesSince(start)
	if err := authority.Validate(cert); err != nil {
		return nil, err
	}
	return &Table{
		ID:    "Section 7.4.2",
		Title: "CA certificate signing latency",
		Rows: []Row{
			{"Total signing session", 906.2, ms(total), "ms"},
			{"RSA signature", 4.7, ms(sumLabel(charges, "cpu.rsasign")), "ms"},
			{"TPM Unseal", 898.3, ms(sumLabel(charges, "tpm.unseal")), "ms"},
		},
	}, nil
}

// Figure6Modules reproduces Figure 6: the PAL module inventory with LoC and
// size accounting (exact by construction; included for completeness).
func Figure6Modules() *Table {
	t := &Table{
		ID:    "Figure 6",
		Title: "PAL module library (LoC per module)",
		Notes: "sizes in the paper's own accounting; mandatory TCB is SLB Core alone",
	}
	for _, m := range pal.ModuleInventory() {
		t.Rows = append(t.Rows, Row{m.Name, float64(m.LOC), float64(m.LOC), "LoC"})
	}
	loc, _, _ := pal.TCBSize([]string{"OS Protection"})
	t.Rows = append(t.Rows, Row{"Minimal mandatory TCB (core + OS prot.)", 250, float64(loc), "LoC (paper: 'as few as 250')"})
	return t
}

// Sec75BlockDeviceIntegrity reproduces Section 7.5: large file copies
// interleaved with repeated long Flicker sessions complete with zero I/O
// errors and intact checksums, because the Flicker-aware driver defers
// transfers during sessions.
func Sec75BlockDeviceIntegrity(fileSize int, sessions int) (*Table, error) {
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "bench-75", MemSize: 64 << 20})
	if err != nil {
		return nil, err
	}
	src := p.Kernel.AttachBlockDev("cdrom", fileSize+4096, 50*time.Nanosecond)
	dst := p.Kernel.AttachBlockDev("usb", fileSize+4096, 30*time.Nanosecond)
	payload := palcrypto.NewPRNG([]byte("dvd-image")).Bytes(fileSize)
	if err := src.Store(0, payload); err != nil {
		return nil, err
	}
	cp, err := p.Kernel.StartCopy(src, 0, dst, 0, fileSize, 64*1024)
	if err != nil {
		return nil, err
	}

	// The distributed-computing app runs repeatedly: "Each run lasts an
	// average of 8.3 seconds, and the legacy OS runs for an average of
	// 37 ms in between."
	unit := distcomp.State{UnitID: 1, N: 1_000_003 * 2, Next: 2, Hi: 1 << 62}
	initRes, err := p.RunSession(distcomp.NewFactorPAL(), core.SessionOptions{
		Input:    distcomp.EncodeRequest(&distcomp.Request{Init: true, Unit: unit}),
		TwoStage: true,
	})
	if err != nil || initRes.PALError != nil {
		return nil, fmt.Errorf("bench: 7.5 init: %v %v", err, initRes.PALError)
	}
	resp, err := distcomp.DecodeResponse(initRes.Outputs)
	if err != nil {
		return nil, err
	}
	deferred := 0
	for i := 0; i < sessions; i++ {
		contRes, err := p.RunSession(distcomp.NewFactorPAL(), core.SessionOptions{
			Input: distcomp.EncodeRequest(&distcomp.Request{
				SealedKey: resp.SealedKey, Envelope: resp.Envelope,
				WorkBudget: 7400 * time.Millisecond, // ~8.3 s sessions
			}),
			TwoStage: true,
		})
		if err != nil || contRes.PALError != nil {
			return nil, fmt.Errorf("bench: 7.5 session: %v %v", err, contRes.PALError)
		}
		if resp, err = distcomp.DecodeResponse(contRes.Outputs); err != nil {
			return nil, err
		}
		// The OS runs for ~37 ms between sessions; the driver pumps I/O.
		for !cp.Done() {
			n, err := cp.Pump(256 * 1024)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				break
			}
		}
		deferred = cp.Deferred
	}
	// Finish any remaining copy work after the sessions.
	for !cp.Done() {
		if _, err := cp.Pump(1 << 20); err != nil {
			return nil, err
		}
	}
	srcSum, err := src.Checksum(0, fileSize)
	if err != nil {
		return nil, err
	}
	dstSum, err := dst.Checksum(0, fileSize)
	if err != nil {
		return nil, err
	}
	intact := 0.0
	if bytes.Equal(srcSum[:], dstSum[:]) {
		intact = 1
	}
	return &Table{
		ID:    "Section 7.5",
		Title: "Block-device integrity across repeated 8.3 s Flicker sessions",
		Rows: []Row{
			{"I/O errors reported", 0, float64(cp.IOErrors), "count"},
			{"md5 checksums match", 1, intact, "bool"},
			{"transfers deferred during sessions", 0, float64(deferred), "count (informational)"},
		},
		Notes: "paper: 'the kernel did not report any I/O errors, and integrity checks with md5sum confirmed...'",
	}, nil
}

// AblationTPMProfiles compares the three latency profiles across the
// session-critical operations — the paper's discussion of the Infineon TPM
// and of the next-generation hardware recommendations [19].
func AblationTPMProfiles() (*Table, error) {
	t := &Table{
		ID:    "Ablation",
		Title: "TPM profile ablation: per-operation latency (ms)",
		Notes: "broadcom = paper's primary platform; infineon = paper's faster comparison; future = [19] recommendations",
	}
	for _, prof := range []*simtime.Profile{
		simtime.ProfileBroadcom(), simtime.ProfileInfineon(), simtime.ProfileFuture(),
	} {
		p, err := core.NewPlatform(core.PlatformConfig{
			Seed:    "bench-abl-" + prof.Name,
			Profile: prof,
		})
		if err != nil {
			return nil, err
		}
		// Measure one SSH login session end to end under this profile.
		ca3, err := attest.NewPrivacyCA([]byte("abl-ca"), 0)
		if err != nil {
			return nil, err
		}
		tqd, err := attest.NewDaemon(p.OSTPM(), tpm.Digest{}, ca3, "abl")
		if err != nil {
			return nil, err
		}
		srv := sshauth.NewServer(p, tqd)
		srv.AddUser("u", "pw", "ablsalts")
		client := sshauth.NewClient(ca3.PublicKey(), []byte("abl"))
		n := client.FreshNonce()
		sr, err := srv.Setup(n)
		if err != nil {
			return nil, err
		}
		if err := client.TrustSetup(sr, n); err != nil {
			return nil, err
		}
		ln := srv.FreshNonce()
		ct, err := client.Encrypt("pw", ln)
		if err != nil {
			return nil, err
		}
		start := p.Clock.Now()
		if err := srv.Login("u", ct, ln); err != nil {
			return nil, err
		}
		login := p.Clock.Now() - start
		t.Rows = append(t.Rows,
			Row{prof.Name + ": quote", 0, ms(prof.TPMQuote), "ms"},
			Row{prof.Name + ": unseal", 0, ms(prof.TPMUnseal), "ms"},
			Row{prof.Name + ": SKINIT (4736 B stub)", 0, ms(prof.SkinitCost(4736)), "ms"},
			Row{prof.Name + ": SSH login session", 0, ms(login), "ms"},
		)
	}
	return t, nil
}
