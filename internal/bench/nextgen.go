package bench

import (
	"fmt"
	"time"

	"flicker/internal/apps/distcomp"
	"flicker/internal/core"
	"flicker/internal/simtime"
)

// AblationNextGenSession quantifies the [19] hardware recommendations the
// paper anticipates ("hardware modifications that can improve performance
// by up to six orders of magnitude"): it measures the fixed per-session
// overhead of a distributed-computing checkpoint session under
//
//  1. the 2008 Broadcom platform with TPM sealed storage,
//  2. the future-hardware profile still using sealed storage, and
//  3. the future-hardware profile with the protected context store
//     (no TPM unseal at all),
//
// and reports the speedups.
func AblationNextGenSession() (*Table, error) {
	type config struct {
		label     string
		profile   *simtime.Profile
		hwContext bool
	}
	configs := []config{
		{"2008 Broadcom + sealed storage", simtime.ProfileBroadcom(), false},
		{"future hw + sealed storage", simtime.ProfileFuture(), false},
		{"future hw + protected context", simtime.ProfileFuture(), true},
	}
	overheads := make([]time.Duration, len(configs))
	for i, cfg := range configs {
		p, err := core.NewPlatform(core.PlatformConfig{
			Seed:    fmt.Sprintf("bench-ng-%d", i),
			Profile: cfg.profile,
		})
		if err != nil {
			return nil, err
		}
		unit := distcomp.State{UnitID: 1, N: 15, Next: 2, Hi: 1 << 62}
		initRes, err := p.RunSession(distcomp.NewFactorPAL(), core.SessionOptions{
			Input: distcomp.EncodeRequest(&distcomp.Request{
				Init: true, Unit: unit, UseHWContext: cfg.hwContext,
			}),
			TwoStage: true,
		})
		if err != nil || initRes.PALError != nil {
			return nil, fmt.Errorf("bench: nextgen init (%s): %v %v", cfg.label, err, initRes.PALError)
		}
		resp, err := distcomp.DecodeResponse(initRes.Outputs)
		if err != nil {
			return nil, err
		}
		req := &distcomp.Request{
			SealedKey:    resp.SealedKey,
			Envelope:     resp.Envelope,
			WorkBudget:   time.Millisecond,
			UseHWContext: cfg.hwContext,
		}
		contRes, err := p.RunSession(distcomp.NewFactorPAL(), core.SessionOptions{
			Input:    distcomp.EncodeRequest(req),
			TwoStage: true,
		})
		if err != nil || contRes.PALError != nil {
			return nil, fmt.Errorf("bench: nextgen continue (%s): %v %v", cfg.label, err, contRes.PALError)
		}
		overheads[i] = contRes.Duration() - time.Millisecond
	}
	t := &Table{
		ID:    "Ablation [19]",
		Title: "Per-session checkpoint overhead across hardware generations",
		Notes: "the paper anticipates 'up to six orders of magnitude' from these recommendations",
	}
	for i, cfg := range configs {
		t.Rows = append(t.Rows, Row{cfg.label, 0, ms(overheads[i]), "ms/session"})
	}
	broadcom := simtime.ProfileBroadcom()
	future := simtime.ProfileFuture()
	primitiveSpeedup := float64(broadcom.TPMUnseal) / float64(future.HWContextCost)
	t.Rows = append(t.Rows,
		Row{"session speedup: future hw (sealed)", 0, float64(overheads[0]) / float64(overheads[1]), "x"},
		Row{"session speedup: future hw + context", 0, float64(overheads[0]) / float64(overheads[2]), "x"},
		// The "six orders of magnitude" claim is about the checkpoint
		// primitive itself: a 898.3 ms TPM Unseal becomes a ~2 us
		// register-speed context fetch.
		Row{"primitive speedup: unseal -> ctx fetch", 0, primitiveSpeedup, "x"},
	)
	return t, nil
}

// AblationMulticoreImpact quantifies the multicore recommendation: the
// Table 3 experiment (kernel build with periodic detection) rerun with
// partitioned sessions that never suspend the OS. With classic sessions the
// build pays ~40 ms per detection; with partitioned launches the build
// continues on the other core and pays nothing.
func AblationMulticoreImpact() (*Table, error) {
	type mode struct {
		label       string
		profile     *simtime.Profile
		partitioned bool
	}
	modes := []mode{
		{"classic sessions (OS suspended)", simtime.ProfileBroadcom(), false},
		{"partitioned sessions (OS running)", simtime.ProfileFuture(), true},
	}
	const buildWork = 60 * time.Second
	const period = 2 * time.Second
	t := &Table{
		ID:    "Ablation multicore",
		Title: "60 s build with detection every 2 s: classic vs partitioned sessions",
		Notes: "partitioned launches keep untrusted code running on the other core ([19])",
	}
	for i, md := range modes {
		p, err := core.NewPlatform(core.PlatformConfig{
			Seed:    fmt.Sprintf("bench-mc-%d", i),
			Profile: md.profile,
			MemSize: 64 << 20,
		})
		if err != nil {
			return nil, err
		}
		for _, m := range paperModules {
			if _, err := p.Kernel.LoadModule(m.Name, m.Size); err != nil {
				return nil, err
			}
		}
		regions := p.Kernel.MeasurableRegions()
		hello := detectionInput(regions)
		p.Kernel.Spawn("make", buildWork)
		start := p.Clock.Now()
		for {
			if p.Kernel.Run(period) == 0 {
				break
			}
			var res *core.SessionResult
			var err error
			if md.partitioned {
				res, err = p.RunSessionConcurrent(detectorPAL(), core.SessionOptions{Input: hello})
			} else {
				res, err = p.RunSession(detectorPAL(), core.SessionOptions{Input: hello})
			}
			if err != nil || res.PALError != nil {
				return nil, fmt.Errorf("bench: multicore (%s): %v %v", md.label, err, res.PALError)
			}
		}
		elapsed := p.Clock.Now() - start
		t.Rows = append(t.Rows, Row{md.label, 0, elapsed.Seconds(), "s"})
	}
	overheadClassic := t.Rows[0].Measured - buildWork.Seconds()
	overheadPart := t.Rows[1].Measured - buildWork.Seconds()
	t.Rows = append(t.Rows,
		Row{"build-time overhead: classic", 0, overheadClassic, "s"},
		Row{"build-time overhead: partitioned", 0, overheadPart, "s"},
	)
	return t, nil
}
