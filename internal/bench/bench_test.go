package bench

import (
	"strings"
	"testing"
)

// Every experiment must regenerate the paper's shape: here "shape" is a
// maximum relative error across the rows that carry a paper value. The
// bounds are deliberately loose for noisy rows and tight for calibrated
// ones; the point of the suite is to catch regressions that change who
// wins or by how much.

func TestTable1ShapeHolds(t *testing.T) {
	tb, err := Table1RootkitBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if e := tb.MaxRelError(); e > 0.10 {
		t.Fatalf("Table 1 max relative error %.1f%%:\n%s", e*100, tb.Format())
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	tb, err := Table2SkinitVsSize()
	if err != nil {
		t.Fatal(err)
	}
	// Skip the 0 KB row (paper reports 0.0); others within 5%.
	for _, r := range tb.Rows[1:] {
		rel := (r.Measured - r.Paper) / r.Paper
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.05 {
			t.Errorf("%s: measured %.1f vs paper %.1f", r.Label, r.Measured, r.Paper)
		}
	}
	// Monotonically increasing in SLB size.
	for i := 1; i < len(tb.Rows); i++ {
		if tb.Rows[i].Measured <= tb.Rows[i-1].Measured {
			t.Errorf("SKINIT not increasing at row %d", i)
		}
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	// Full scale — the simulated clock makes a 7:22 build cheap. The shape
	// claim is that the detection overhead is lost in the noise (all rows
	// within ~1-2% of the no-detection baseline).
	tb, err := Table3SystemImpact(1.0)
	if err != nil {
		t.Fatal(err)
	}
	base := tb.Rows[0].Measured
	for _, r := range tb.Rows[1:] {
		if rel := (r.Measured - base) / base; rel > 0.02 || rel < -0.02 {
			t.Errorf("%s: %.1f s vs baseline %.1f s (%.2f%%)", r.Label, r.Measured, base, rel*100)
		}
	}
}

func TestTable4ShapeHolds(t *testing.T) {
	tb, err := Table4DistcompOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if e := tb.MaxRelError(); e > 0.08 {
		t.Fatalf("Table 4 max relative error %.1f%%:\n%s", e*100, tb.Format())
	}
	// Overhead decreases as work grows (the table's defining shape).
	for i := 1; i < 4; i++ {
		if tb.Rows[i].Measured >= tb.Rows[i-1].Measured {
			t.Errorf("overhead not decreasing: row %d", i)
		}
	}
}

func TestFigure8ShapeHolds(t *testing.T) {
	tb, err := Figure8Efficiency()
	if err != nil {
		t.Fatal(err)
	}
	// Crossovers: at 2 s Flicker beats 3-way; below ~1 s it loses to 3-way.
	byLabel := map[string]float64{}
	for _, r := range tb.Rows {
		byLabel[r.Label] = r.Measured
	}
	if byLabel["Flicker efficiency @ 2 s latency"] <= byLabel["3-way replication efficiency"] {
		t.Error("2 s Flicker does not beat 3-way replication")
	}
	if byLabel["Flicker efficiency @ 1 s latency"] >= 0.33 {
		t.Error("1 s Flicker should not beat 3-way replication")
	}
	if byLabel["Flicker efficiency @ 10 s latency"] < 0.85 {
		t.Error("10 s efficiency too low")
	}
}

func TestFigure9ShapeHolds(t *testing.T) {
	t1, t2, err := Figure9SSH()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []*Table{t1, t2} {
		if e := tb.MaxRelError(); e > 0.08 {
			t.Fatalf("%s max relative error %.1f%%:\n%s", tb.ID, e*100, tb.Format())
		}
	}
}

func TestCASignShapeHolds(t *testing.T) {
	tb, err := CASignLatency()
	if err != nil {
		t.Fatal(err)
	}
	if e := tb.MaxRelError(); e > 0.06 {
		t.Fatalf("CA sign max relative error %.1f%%:\n%s", e*100, tb.Format())
	}
}

func TestFigure6Exact(t *testing.T) {
	tb := Figure6Modules()
	for _, r := range tb.Rows[:7] {
		if r.Paper != r.Measured {
			t.Errorf("%s: %v != %v", r.Label, r.Paper, r.Measured)
		}
	}
}

func TestSec75Integrity(t *testing.T) {
	tb, err := Sec75BlockDeviceIntegrity(2<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, r := range tb.Rows {
		byLabel[r.Label] = r.Measured
	}
	if byLabel["I/O errors reported"] != 0 {
		t.Error("I/O errors occurred")
	}
	if byLabel["md5 checksums match"] != 1 {
		t.Error("copied file corrupted")
	}
}

func TestAblationOrdering(t *testing.T) {
	tb, err := AblationTPMProfiles()
	if err != nil {
		t.Fatal(err)
	}
	login := map[string]float64{}
	for _, r := range tb.Rows {
		if strings.HasSuffix(r.Label, "SSH login session") {
			login[strings.Split(r.Label, ":")[0]] = r.Measured
		}
	}
	if !(login["future-hw"] < login["infineon"] && login["infineon"] < login["broadcom-bcm0102"]) {
		t.Fatalf("login latency ordering wrong: %v", login)
	}
	// The future-hardware profile should make the login orders of
	// magnitude cheaper, per [19].
	if login["broadcom-bcm0102"]/login["future-hw"] < 100 {
		t.Errorf("future hardware speedup only %.0fx", login["broadcom-bcm0102"]/login["future-hw"])
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Rows: []Row{{"row", 1, 1.05, "ms"}}, Notes: "n"}
	s := tb.Format()
	for _, want := range []string{"T — demo", "row", "1.00", "1.05", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q:\n%s", want, s)
		}
	}
	if e := tb.MaxRelError(); e < 0.04 || e > 0.06 {
		t.Errorf("MaxRelError = %v", e)
	}
}

func TestAblationNextGenSixOrders(t *testing.T) {
	tb, err := AblationNextGenSession()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, r := range tb.Rows {
		byLabel[r.Label] = r.Measured
	}
	if byLabel["2008 Broadcom + sealed storage"] < 900 {
		t.Errorf("2008 overhead = %.1f ms, want ~920", byLabel["2008 Broadcom + sealed storage"])
	}
	// End-to-end sessions keep OS costs (context switch, page tables), so
	// the whole-session speedup is hundreds of x...
	if sp := byLabel["session speedup: future hw + context"]; sp < 400 {
		t.Errorf("session speedup = %.0fx, want >= 400", sp)
	}
	// ...while the checkpoint primitive itself improves by the paper's
	// anticipated "up to six orders of magnitude".
	if sp := byLabel["primitive speedup: unseal -> ctx fetch"]; sp < 1e5 {
		t.Errorf("primitive speedup = %.0fx, want >= 1e5", sp)
	}
}

func TestAblationMulticoreEliminatesImpact(t *testing.T) {
	tb, err := AblationMulticoreImpact()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, r := range tb.Rows {
		byLabel[r.Label] = r.Measured
	}
	classic := byLabel["build-time overhead: classic"]
	part := byLabel["build-time overhead: partitioned"]
	if classic <= 0 {
		t.Fatalf("classic sessions show no overhead (%.3f s)", classic)
	}
	if part > classic/10 {
		t.Fatalf("partitioned overhead %.3f s not << classic %.3f s", part, classic)
	}
}
