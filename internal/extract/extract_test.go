package extract

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const appSrc = `package app

import (
	"fmt"
	"os"
)

const blockSize = 64

type digest struct {
	state [4]uint32
	buf   []byte
}

func (d *digest) reset() {
	d.state = initState
	d.buf = nil
}

func (d *digest) update(p []byte) {
	d.buf = append(d.buf, p...)
}

var initState = [4]uint32{1, 2, 3, 4}

func hashPassword(pw string, salt string) []byte {
	d := &digest{}
	d.reset()
	d.update([]byte(salt))
	d.update([]byte(pw))
	return finalize(d)
}

func finalize(d *digest) []byte {
	out := make([]byte, blockSize)
	for i, s := range d.state {
		out[i] = byte(s)
	}
	return out
}

func mainLoop() {
	for {
		pw := readLine()
		fmt.Println(hashPassword(pw, "salt"))
	}
}

func readLine() string {
	buf := make([]byte, 128)
	n, _ := os.Stdin.Read(buf)
	return string(buf[:n])
}

func unrelatedHelper() int { return 42 }
`

func TestExtractClosure(t *testing.T) {
	res, err := Extract(map[string]string{"app.go": appSrc}, "hashPassword")
	if err != nil {
		t.Fatal(err)
	}
	src := string(res.Source)
	// The closure: hashPassword, finalize, digest (+methods), blockSize,
	// initState.
	for _, want := range []string{"func hashPassword", "func finalize", "type digest",
		"const blockSize", "var initState", "func (d *digest) reset", "func (d *digest) update"} {
		if !strings.Contains(src, want) {
			t.Errorf("extracted source missing %q", want)
		}
	}
	// Unrelated code stays out.
	for _, bad := range []string{"mainLoop", "readLine", "unrelatedHelper"} {
		if strings.Contains(src, bad) {
			t.Errorf("extracted source includes unrelated %q", bad)
		}
	}
	// No external references for this target.
	if len(res.External) != 0 {
		t.Errorf("external = %v, want none", res.External)
	}
	// The output must be parseable Go.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "out.go", res.Source, 0); err != nil {
		t.Fatalf("extracted source does not parse: %v\n%s", err, src)
	}
}

func TestExtractReportsExternalReferences(t *testing.T) {
	// Extracting mainLoop drags in fmt.Println and os.Stdin — the Go
	// analogue of the paper's "by default, a PAL cannot call printf or
	// malloc".
	res, err := Extract(map[string]string{"app.go": appSrc}, "mainLoop")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(res.External, ",")
	for _, want := range []string{"fmt.Println", "os.Stdin"} {
		if !strings.Contains(got, want) {
			t.Errorf("external list %q missing %q", got, want)
		}
	}
	if !strings.Contains(string(res.Source), "func readLine") {
		t.Error("transitive callee readLine missing")
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(map[string]string{"a.go": appSrc}, "nope"); err == nil {
		t.Error("missing target accepted")
	}
	if _, err := Extract(map[string]string{"a.go": appSrc}, "blockSize"); err == nil {
		t.Error("non-function target accepted")
	}
	if _, err := Extract(map[string]string{"a.go": "not go code {{{"}, "x"); err == nil {
		t.Error("unparseable source accepted")
	}
	if _, err := Extract(map[string]string{
		"a.go": "package a\nfunc f() {}",
		"b.go": "package b\nfunc g() {}",
	}, "f"); err == nil {
		t.Error("mixed packages accepted")
	}
}

func TestExtractMultiFile(t *testing.T) {
	res, err := Extract(map[string]string{
		"one.go": "package p\n\nfunc entry() int { return helper() + 1 }\n",
		"two.go": "package p\n\nfunc helper() int { return shared }\n\nvar shared = 7\n",
	}, "entry")
	if err != nil {
		t.Fatal(err)
	}
	src := string(res.Source)
	for _, want := range []string{"func entry", "func helper", "var shared"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
	if len(res.Included) != 3 {
		t.Errorf("included = %v", res.Included)
	}
}

func TestExtractDeterministic(t *testing.T) {
	a, err := Extract(map[string]string{"app.go": appSrc}, "hashPassword")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Extract(map[string]string{"app.go": appSrc}, "hashPassword")
	if string(a.Source) != string(b.Source) {
		t.Fatal("extraction not deterministic")
	}
}
