package flicker_test

import (
	"fmt"
	"log"

	"flicker"
)

// ExampleNewPlatform runs the paper's Figure 5 "Hello, world" PAL in a
// Flicker session and prints its output.
func ExampleNewPlatform() {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "example"})
	if err != nil {
		log.Fatal(err)
	}
	hello := &flicker.PALFunc{
		PALName: "hello",
		Binary:  flicker.DescriptorCode("hello", "1.0", nil, nil),
		Fn: func(env *flicker.Env, input []byte) ([]byte, error) {
			return []byte("Hello, world"), nil
		},
	}
	res, err := p.RunSession(hello, flicker.SessionOptions{})
	if err != nil || res.PALError != nil {
		log.Fatal(err, res.PALError)
	}
	fmt.Println(string(res.Outputs))
	// Output: Hello, world
}

// ExampleVerifySession shows the remote party's check: recompute the
// expected PCR-17 chain for (PAL, inputs, outputs, nonce) and verify the
// quote against it.
func ExampleVerifySession() {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "example-verify"})
	if err != nil {
		log.Fatal(err)
	}
	ca, err := flicker.NewPrivacyCA([]byte("example-ca"), 0)
	if err != nil {
		log.Fatal(err)
	}
	tqd, err := flicker.NewQuoteDaemon(p.OSTPM(), flicker.Digest{}, ca, "example-host")
	if err != nil {
		log.Fatal(err)
	}
	echo := &flicker.PALFunc{
		PALName: "echo",
		Binary:  flicker.DescriptorCode("echo", "1.0", nil, nil),
		Fn: func(env *flicker.Env, input []byte) ([]byte, error) {
			return append([]byte("echo:"), input...), nil
		},
	}
	nonce := flicker.SHA1Sum([]byte("challenge"))
	res, err := p.RunSession(echo, flicker.SessionOptions{Input: []byte("hi"), Nonce: &nonce})
	if err != nil || res.PALError != nil {
		log.Fatal(err, res.PALError)
	}
	att, err := tqd.Quote(nonce)
	if err != nil {
		log.Fatal(err)
	}
	im, err := flicker.BuildImage(echo, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := im.Patch(res.SLBBase); err != nil {
		log.Fatal(err)
	}
	if err := flicker.VerifySession(ca.PublicKey(), att, nonce, im, []byte("hi"), res.Outputs); err != nil {
		fmt.Println("attestation invalid:", err)
		return
	}
	fmt.Println("attestation verified")
	// Output: attestation verified
}

// ExampleEnv_SealToSelf demonstrates sealed storage across two sessions of
// the same PAL: the first session seals a secret, the second unseals it; no
// other software on the platform can.
func ExampleEnv_SealToSelf() {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "example-seal"})
	if err != nil {
		log.Fatal(err)
	}
	var blob []byte
	keeper := &flicker.PALFunc{
		PALName: "keeper",
		Binary:  flicker.DescriptorCode("keeper", "1.0", []string{"TPM Driver", "TPM Utilities"}, nil),
		Fn: func(env *flicker.Env, input []byte) ([]byte, error) {
			if len(input) > 0 {
				return env.Unseal(input)
			}
			var err error
			blob, err = env.SealToSelf([]byte("the CA's private key"))
			return []byte("sealed"), err
		},
	}
	if res, err := p.RunSession(keeper, flicker.SessionOptions{}); err != nil || res.PALError != nil {
		log.Fatal(err, res.PALError)
	}
	res, err := p.RunSession(keeper, flicker.SessionOptions{Input: blob})
	if err != nil || res.PALError != nil {
		log.Fatal(err, res.PALError)
	}
	fmt.Println(string(res.Outputs))
	// Output: the CA's private key
}

// ExampleTCBSize reproduces the paper's headline TCB accounting.
func ExampleTCBSize() {
	loc, _, _ := flicker.TCBSize([]string{"OS Protection"})
	fmt.Printf("mandatory TCB with OS protection: %d lines of code\n", loc)
	// Output: mandatory TCB with OS protection: 99 lines of code
}
