module flicker

go 1.22
