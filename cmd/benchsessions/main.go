// benchsessions measures session-hot-path throughput — classic, partitioned,
// and the sharded pool — and writes a machine-readable BENCH_sessions.json so
// CI can track the perf trajectory PR-over-PR.
//
// Unlike the go-test benchmarks (which report to the console), this tool is
// the artifact emitter: fixed iteration counts, wall-clock sessions/s, and
// allocations per session measured from runtime.MemStats.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"flicker"
)

// modeResult is one benchmark mode's measurements. For batched modes an
// "op" is one request, not one session (Batch reports how many requests
// shared each session), so sessions_per_sec columns stay comparable as
// requests-served-per-second across singleton and batched trajectories.
type modeResult struct {
	Sessions       int     `json:"sessions"`
	Batch          int     `json:"batch,omitempty"`
	NsPerOp        float64 `json:"ns_per_op"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
}

// reportFile is the BENCH_sessions.json schema.
type reportFile struct {
	GeneratedUnix int64                 `json:"generated_unix"`
	GoVersion     string                `json:"go_version"`
	GOMAXPROCS    int                   `json:"gomaxprocs"`
	Modes         map[string]modeResult `json:"modes"`
}

func demoPAL(name string) flicker.PAL {
	return &flicker.PALFunc{
		PALName: name,
		Binary:  flicker.DescriptorCode(name, "1.0", nil, nil),
		Fn: func(env *flicker.Env, input []byte) ([]byte, error) {
			return []byte("ok"), nil
		},
	}
}

// measure runs fn n times and returns wall time plus per-op allocation stats.
func measure(n int, fn func() error) (modeResult, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return modeResult{}, err
		}
	}
	dt := time.Since(start)
	runtime.ReadMemStats(&after)
	return modeResult{
		Sessions:       n,
		NsPerOp:        float64(dt.Nanoseconds()) / float64(n),
		SessionsPerSec: float64(n) / dt.Seconds(),
		AllocsPerOp:    float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:     float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}, nil
}

// runPlatform benchmarks one session flavour on a fresh platform, warming the
// image and measurement caches first so the steady state is what's measured.
func runPlatform(n int, run func(p *flicker.Platform) error) (modeResult, error) {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "benchsessions", Profile: flicker.ProfileFuture()})
	if err != nil {
		return modeResult{}, err
	}
	if err := run(p); err != nil {
		return modeResult{}, err
	}
	return measure(n, func() error { return run(p) })
}

// runPool benchmarks aggregate pool throughput with 8 concurrent submitters
// spreading 8 PAL names over the shards.
func runPool(n, shards int) (modeResult, error) {
	pool, err := flicker.NewPool(flicker.PoolConfig{
		Shards:   shards,
		QueueLen: 4,
		Platform: flicker.Config{Seed: "benchsessions-pool", Profile: flicker.ProfileFuture()},
	})
	if err != nil {
		return modeResult{}, err
	}
	defer pool.Close()
	pals := make([]flicker.PAL, 8)
	for i := range pals {
		pals[i] = demoPAL(fmt.Sprintf("pal-%c", 'a'+i))
	}
	for _, pl := range pals {
		if _, err := pool.Run(pl, flicker.SessionOptions{}); err != nil {
			return modeResult{}, err
		}
	}
	const submitters = 8
	return measure(1, func() error {
		var wg sync.WaitGroup
		errs := make(chan error, submitters)
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += submitters {
					res, err := pool.Run(pals[i%len(pals)], flicker.SessionOptions{})
					if err != nil {
						errs <- err
						return
					}
					if res.PALError != nil {
						errs <- res.PALError
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		return <-errs
	})
}

// runBatchDirect benchmarks RunSessionBatch on one platform: n requests in
// groups of batch behind single SKINIT/Seal cycles. Per-op numbers are per
// REQUEST so the mode compares directly against classic (batch=1 sessions).
func runBatchDirect(n, batch int) (modeResult, error) {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "benchsessions", Profile: flicker.ProfileFuture()})
	if err != nil {
		return modeResult{}, err
	}
	hello := demoPAL("hello")
	reqs := make([][]byte, batch)
	for i := range reqs {
		reqs[i] = []byte(fmt.Sprintf("req-%d", i))
	}
	run := func() error {
		br, err := p.RunSessionBatch(hello, flicker.Batch{Requests: reqs}, flicker.SessionOptions{})
		if err != nil {
			return err
		}
		if br.Session.PALError != nil {
			return br.Session.PALError
		}
		for i, r := range br.Replies {
			if r.Err != nil {
				return fmt.Errorf("request %d: %w", i, r.Err)
			}
		}
		return nil
	}
	if err := run(); err != nil {
		return modeResult{}, err
	}
	r, err := measure(n/batch, run)
	if err != nil {
		return modeResult{}, err
	}
	// Rescale from per-session to per-request ops.
	r.Sessions = n / batch
	r.Batch = batch
	r.NsPerOp /= float64(batch)
	r.SessionsPerSec *= float64(batch)
	r.AllocsPerOp /= float64(batch)
	r.BytesPerOp /= float64(batch)
	return r, nil
}

// runPoolBatched benchmarks the pool's adaptive coalescer: concurrent
// submitters of the SAME PAL, so the shard queue groups them behind shared
// sessions. Per-op numbers are per request.
func runPoolBatched(n, shards, maxBatch int) (modeResult, error) {
	pool, err := flicker.NewPool(flicker.PoolConfig{
		Shards:   shards,
		QueueLen: 64,
		MaxBatch: maxBatch,
		MaxWait:  2 * time.Millisecond,
		Platform: flicker.Config{Seed: "benchsessions-pool", Profile: flicker.ProfileFuture()},
	})
	if err != nil {
		return modeResult{}, err
	}
	defer pool.Close()
	hello := demoPAL("hello")
	if _, err := pool.Run(hello, flicker.SessionOptions{}); err != nil {
		return modeResult{}, err
	}
	const submitters = 16
	r, err := measure(1, func() error {
		var wg sync.WaitGroup
		errs := make(chan error, submitters)
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += submitters {
					res, err := pool.Run(hello, flicker.SessionOptions{Input: []byte(fmt.Sprintf("req-%d", i))})
					if err != nil {
						errs <- err
						return
					}
					if res.PALError != nil {
						errs <- res.PALError
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		return <-errs
	})
	if err != nil {
		return modeResult{}, err
	}
	r.Sessions = int(pool.Stats().Sessions)
	r.Batch = maxBatch
	r.NsPerOp /= float64(n)
	r.SessionsPerSec = float64(n) * r.SessionsPerSec
	r.AllocsPerOp /= float64(n)
	r.BytesPerOp /= float64(n)
	return r, nil
}

func main() {
	out := flag.String("o", "BENCH_sessions.json", "output path")
	n := flag.Int("n", 2000, "sessions per mode")
	flag.Parse()

	hello := demoPAL("hello")
	report := reportFile{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Modes:         map[string]modeResult{},
	}

	classic, err := runPlatform(*n, func(p *flicker.Platform) error {
		res, err := p.RunSession(hello, flicker.SessionOptions{})
		if err != nil {
			return err
		}
		return res.PALError
	})
	if err != nil {
		log.Fatalf("classic: %v", err)
	}
	report.Modes["classic"] = classic

	partitioned, err := runPlatform(*n, func(p *flicker.Platform) error {
		res, err := p.RunSessionConcurrent(hello, flicker.SessionOptions{})
		if err != nil {
			return err
		}
		return res.PALError
	})
	if err != nil {
		log.Fatalf("partitioned: %v", err)
	}
	report.Modes["partitioned"] = partitioned

	for _, shards := range []int{1, 4} {
		r, err := runPool(*n, shards)
		if err != nil {
			log.Fatalf("pool shards=%d: %v", shards, err)
		}
		// measure ran the whole batch as one op; rescale to per-session.
		r.Sessions = *n
		r.NsPerOp /= float64(*n)
		r.SessionsPerSec = float64(*n) * r.SessionsPerSec
		r.AllocsPerOp /= float64(*n)
		r.BytesPerOp /= float64(*n)
		report.Modes[fmt.Sprintf("pool_shards%d", shards)] = r
	}

	// Batched trajectories: requests/s through shared sessions, directly
	// comparable against classic (=batch 1) and pool_shards1 (singleton
	// coalescer-off pool) above.
	for _, batch := range []int{8, 32} {
		r, err := runBatchDirect(*n, batch)
		if err != nil {
			log.Fatalf("batch_direct%d: %v", batch, err)
		}
		report.Modes[fmt.Sprintf("batch_direct%d", batch)] = r
	}
	rb, err := runPoolBatched(*n, 1, 8)
	if err != nil {
		log.Fatalf("pool_batch8: %v", err)
	}
	report.Modes["pool_batch8"] = rb

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for name, m := range report.Modes {
		fmt.Printf("%-14s %10.0f sessions/s  %7.1f allocs/op  %9.0f B/op\n",
			name, m.SessionsPerSec, m.AllocsPerOp, m.BytesPerOp)
	}
	fmt.Printf("wrote %s\n", *out)
}
