// benchsessions measures session-hot-path throughput — classic and the
// sharded pool, closed- and open-loop — and writes a machine-readable
// BENCH_sessions.json so CI can track the perf trajectory PR-over-PR.
//
// Unlike the go-test benchmarks (which report to the console), this tool is
// the artifact emitter: fixed iteration counts, wall-clock sessions/s, and
// allocations per session measured from runtime.MemStats.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"flicker"
)

// modeResult is one benchmark mode's measurements. For batched modes an
// "op" is one request, not one session (Batch reports how many requests
// shared each session), so sessions_per_sec columns stay comparable as
// requests-served-per-second across singleton and batched trajectories.
type modeResult struct {
	Sessions   int `json:"sessions"`
	Batch      int `json:"batch,omitempty"`
	Hosts      int `json:"hosts,omitempty"`
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`
	// DegradedParallelism marks a mode that asked for real parallelism
	// (the _mp and _par passes) on a single-CPU machine: the numbers are
	// valid but say nothing about scaling, and the CI shard-scaling gate
	// must skip rather than silently pass on them.
	DegradedParallelism bool    `json:"degraded_parallelism,omitempty"`
	NsPerOp             float64 `json:"ns_per_op"`
	SessionsPerSec      float64 `json:"sessions_per_sec"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
	BytesPerOp          float64 `json:"bytes_per_op"`
}

// reportFile is the BENCH_sessions.json schema. Every core mode runs
// twice: pinned to one P (legacy mode names — scheduler-neutral numbers
// that stay comparable across CI machines) and at the machine's real
// parallelism ("_mp" suffix). The fabric modes are paced by simulated
// device time rather than CPU, so they run once.
type reportFile struct {
	GeneratedUnix      int64                 `json:"generated_unix"`
	GoVersion          string                `json:"go_version"`
	GOMAXPROCS         int                   `json:"gomaxprocs"`
	NumCPU             int                   `json:"num_cpu"`
	GOMAXPROCSPinned   int                   `json:"gomaxprocs_pinned"`
	GOMAXPROCSParallel int                   `json:"gomaxprocs_parallel"`
	Modes              map[string]modeResult `json:"modes"`
}

func demoPAL(name string) flicker.PAL {
	return &flicker.PALFunc{
		PALName: name,
		Binary:  flicker.DescriptorCode(name, "1.0", nil, nil),
		Fn: func(env *flicker.Env, input []byte) ([]byte, error) {
			return []byte("ok"), nil
		},
	}
}

// measure runs fn n times and returns wall time plus per-op allocation stats.
func measure(n int, fn func() error) (modeResult, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return modeResult{}, err
		}
	}
	dt := time.Since(start)
	runtime.ReadMemStats(&after)
	return modeResult{
		Sessions:       n,
		NsPerOp:        float64(dt.Nanoseconds()) / float64(n),
		SessionsPerSec: float64(n) / dt.Seconds(),
		AllocsPerOp:    float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:     float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}, nil
}

// runPlatform benchmarks one session flavour on a fresh platform, warming the
// image and measurement caches first so the steady state is what's measured.
func runPlatform(n int, run func(p *flicker.Platform) error) (modeResult, error) {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "benchsessions", Profile: flicker.ProfileFuture()})
	if err != nil {
		return modeResult{}, err
	}
	if err := run(p); err != nil {
		return modeResult{}, err
	}
	return measure(n, func() error { return run(p) })
}

// runPool benchmarks aggregate pool throughput with 8 concurrent submitters
// spreading 8 PAL names over the shards.
func runPool(n, shards int) (modeResult, error) {
	pool, err := flicker.NewPool(flicker.PoolConfig{
		Shards:   shards,
		QueueLen: 4,
		Platform: flicker.Config{Seed: "benchsessions-pool", Profile: flicker.ProfileFuture()},
	})
	if err != nil {
		return modeResult{}, err
	}
	defer pool.Close()
	pals := make([]flicker.PAL, 8)
	for i := range pals {
		pals[i] = demoPAL(fmt.Sprintf("pal-%c", 'a'+i))
	}
	for _, pl := range pals {
		if _, err := pool.Run(pl, flicker.SessionOptions{}); err != nil {
			return modeResult{}, err
		}
	}
	const submitters = 8
	return measure(1, func() error {
		var wg sync.WaitGroup
		errs := make(chan error, submitters)
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += submitters {
					res, err := pool.Run(pals[i%len(pals)], flicker.SessionOptions{})
					if err != nil {
						errs <- err
						return
					}
					if res.PALError != nil {
						errs <- res.PALError
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		return <-errs
	})
}

// runPoolParallel is the true-parallel pass: open-loop submitters (at
// least 2x the shard count, and at least one per CPU) drive the pool at
// GOMAXPROCS=NumCPU with a queue deep enough that the submit ring, not the
// submitters, sets the pace. pool_shards4_par vs pool_shards1_par is the
// shard-scaling gate: with per-shard platform stacks and the lock-free
// ring, four shards must clear 3x one shard on >= 4 CPUs.
func runPoolParallel(n, shards int) (modeResult, error) {
	pool, err := flicker.NewPool(flicker.PoolConfig{
		Shards:   shards,
		QueueLen: 64,
		Platform: flicker.Config{Seed: "benchsessions-pool", Profile: flicker.ProfileFuture()},
	})
	if err != nil {
		return modeResult{}, err
	}
	defer pool.Close()
	// One PAL per shard slot and then some, so affinity routing spreads
	// the open-loop load over every shard.
	pals := make([]flicker.PAL, 8)
	for i := range pals {
		pals[i] = demoPAL(fmt.Sprintf("pal-%c", 'a'+i))
	}
	for _, pl := range pals {
		if _, err := pool.Run(pl, flicker.SessionOptions{}); err != nil {
			return modeResult{}, err
		}
	}
	submitters := 2 * shards
	if c := runtime.NumCPU(); submitters < c {
		submitters = c
	}
	if submitters < 8 {
		submitters = 8
	}
	r, err := measure(1, func() error {
		var wg sync.WaitGroup
		errs := make(chan error, submitters)
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += submitters {
					res, err := pool.Run(pals[i%len(pals)], flicker.SessionOptions{})
					if err != nil {
						errs <- err
						return
					}
					if res.PALError != nil {
						errs <- res.PALError
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		return <-errs
	})
	if err != nil {
		return modeResult{}, err
	}
	r.Sessions = n
	r.NsPerOp /= float64(n)
	r.SessionsPerSec = float64(n) * r.SessionsPerSec
	r.AllocsPerOp /= float64(n)
	r.BytesPerOp /= float64(n)
	return r, nil
}

// runBatchDirect benchmarks RunSessionBatch on one platform: n requests in
// groups of batch behind single SKINIT/Seal cycles. Per-op numbers are per
// REQUEST so the mode compares directly against classic (batch=1 sessions).
func runBatchDirect(n, batch int) (modeResult, error) {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "benchsessions", Profile: flicker.ProfileFuture()})
	if err != nil {
		return modeResult{}, err
	}
	hello := demoPAL("hello")
	reqs := make([][]byte, batch)
	for i := range reqs {
		reqs[i] = []byte(fmt.Sprintf("req-%d", i))
	}
	run := func() error {
		br, err := p.RunSessionBatch(hello, flicker.Batch{Requests: reqs}, flicker.SessionOptions{})
		if err != nil {
			return err
		}
		if br.Session.PALError != nil {
			return br.Session.PALError
		}
		for i, r := range br.Replies {
			if r.Err != nil {
				return fmt.Errorf("request %d: %w", i, r.Err)
			}
		}
		return nil
	}
	if err := run(); err != nil {
		return modeResult{}, err
	}
	r, err := measure(n/batch, run)
	if err != nil {
		return modeResult{}, err
	}
	// Rescale from per-session to per-request ops.
	r.Sessions = n / batch
	r.Batch = batch
	r.NsPerOp /= float64(batch)
	r.SessionsPerSec *= float64(batch)
	r.AllocsPerOp /= float64(batch)
	r.BytesPerOp /= float64(batch)
	return r, nil
}

// runPoolBatched benchmarks the pool's adaptive coalescer: concurrent
// submitters of the SAME PAL, so the shard queue groups them behind shared
// sessions. Per-op numbers are per request.
func runPoolBatched(n, shards, maxBatch int) (modeResult, error) {
	pool, err := flicker.NewPool(flicker.PoolConfig{
		Shards:   shards,
		QueueLen: 64,
		MaxBatch: maxBatch,
		MaxWait:  2 * time.Millisecond,
		Platform: flicker.Config{Seed: "benchsessions-pool", Profile: flicker.ProfileFuture()},
	})
	if err != nil {
		return modeResult{}, err
	}
	defer pool.Close()
	hello := demoPAL("hello")
	if _, err := pool.Run(hello, flicker.SessionOptions{}); err != nil {
		return modeResult{}, err
	}
	const submitters = 16
	r, err := measure(1, func() error {
		var wg sync.WaitGroup
		errs := make(chan error, submitters)
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += submitters {
					res, err := pool.Run(hello, flicker.SessionOptions{Input: []byte(fmt.Sprintf("req-%d", i))})
					if err != nil {
						errs <- err
						return
					}
					if res.PALError != nil {
						errs <- res.PALError
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		return <-errs
	})
	if err != nil {
		return modeResult{}, err
	}
	r.Sessions = int(pool.Stats().Sessions)
	r.Batch = maxBatch
	r.NsPerOp /= float64(n)
	r.SessionsPerSec = float64(n) * r.SessionsPerSec
	r.AllocsPerOp /= float64(n)
	r.BytesPerOp /= float64(n)
	return r, nil
}

// runTraced benchmarks the classic session loop with the distributed tracer
// attached at the given sample rate: 0 costs one sampler check per session
// (the <5% CI gate), 1.0 pays full span assembly into a flight recorder.
// capture, when non-nil, receives the last fully-assembled trace — the
// TRACE_sample.json artifact CI uploads next to BENCH_sessions.json.
func runTraced(n int, rate float64, capture **flicker.TraceData) (modeResult, error) {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "benchsessions", Profile: flicker.ProfileFuture()})
	if err != nil {
		return modeResult{}, err
	}
	tracer := flicker.NewTracer("benchsessions", p.Clock.Now)
	tracer.SetSampleRate(rate)
	rec := flicker.NewTraceFlightRecorder(8, 8, 0)
	tracer.OnComplete(func(td *flicker.TraceData) {
		rec.Offer(td)
		if capture != nil {
			*capture = td
		}
	})
	hello := demoPAL("hello")
	run := func() error {
		root := tracer.StartSampled("bench.run")
		var o flicker.SessionOptions
		if root != nil {
			root.SetAttr("pal", "hello")
			o.TraceID = root.TraceHex()
			o.Observer = flicker.NewSessionTraceObserver(root)
		}
		res, err := p.RunSession(hello, o)
		if err != nil {
			return err
		}
		root.EndErr(res.PALError)
		return res.PALError
	}
	if err := run(); err != nil {
		return modeResult{}, err
	}
	return measure(n, run)
}

// pacedPAL returns a PAL whose body sleeps for the given wall time,
// emulating a device-paced session (TPM waits, I/O). Sleeps release the P,
// so paced sessions on different hosts overlap regardless of core count —
// which is exactly the workload the fabric's horizontal scaling targets.
func pacedPAL(name string, pace time.Duration) flicker.PAL {
	return &flicker.PALFunc{
		PALName: name,
		Binary:  flicker.DescriptorCode(name, "1.0", nil, nil),
		Fn: func(env *flicker.Env, input []byte) ([]byte, error) {
			time.Sleep(pace)
			return []byte("ok"), nil
		},
	}
}

// runFabric benchmarks end-to-end controller throughput over an in-process
// attestation fabric of `hosts` quote-verified members, 8 paced PALs, 32
// concurrent submitters. Per-op numbers are per session.
func runFabric(n, hosts int) (modeResult, error) {
	sw := flicker.NewNetSwitch(0, 0)
	ca, err := flicker.NewPrivacyCA([]byte("benchsessions-fabric"), 0)
	if err != nil {
		return modeResult{}, err
	}
	ctrl, err := flicker.NewFabricController(sw, ca, flicker.FabricControllerConfig{
		Seed: "benchsessions", HostInFlight: 1,
	})
	if err != nil {
		return modeResult{}, err
	}
	pals := make([]flicker.PAL, 8)
	for i := range pals {
		pals[i] = pacedPAL(fmt.Sprintf("paced-%c", 'a'+i), 500*time.Microsecond)
		if err := ctrl.RegisterPAL(pals[i]); err != nil {
			return modeResult{}, err
		}
	}
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("host%d", i)
		h, err := flicker.NewFabricHost(sw, ca, flicker.FabricHostConfig{
			Name:     name,
			Platform: flicker.Config{Seed: "benchsessions|" + name, Profile: flicker.ProfileFuture()},
		})
		if err != nil {
			return modeResult{}, err
		}
		defer h.Close()
		for _, pl := range pals {
			if err := h.RegisterPAL(pl); err != nil {
				return modeResult{}, err
			}
		}
		if err := ctrl.Admit(name); err != nil {
			return modeResult{}, err
		}
	}
	// Warm every PAL's image cache fleet-wide.
	for _, pl := range pals {
		if _, err := ctrl.Run(pl.Name(), nil); err != nil {
			return modeResult{}, err
		}
	}
	const submitters = 32
	r, err := measure(1, func() error {
		var wg sync.WaitGroup
		errs := make(chan error, submitters)
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += submitters {
					if _, err := ctrl.Run(pals[i%len(pals)].Name(), nil); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		return <-errs
	})
	if err != nil {
		return modeResult{}, err
	}
	r.Sessions = n
	r.Hosts = hosts
	r.NsPerOp /= float64(n)
	r.SessionsPerSec = float64(n) * r.SessionsPerSec
	r.AllocsPerOp /= float64(n)
	r.BytesPerOp /= float64(n)
	return r, nil
}

// pacedBatchPAL is the device-paced workload for the batched-fabric modes:
// the session-entry cost (SKINIT + Unseal stand-in) is paid once per
// session at OpenBatch, and each request behind it is trivial. The
// singleton Run path sleeps the same pace, so a coalescer that falls back
// to singleton frames pays exactly what fabric1's paced sessions pay —
// any speedup the batch modes report is wire + session amortization, not a
// cheaper workload.
type pacedBatchPAL struct {
	name string
	pace time.Duration
	code []byte
}

func newPacedBatchPAL(name string, pace time.Duration) *pacedBatchPAL {
	return &pacedBatchPAL{name: name, pace: pace, code: flicker.DescriptorCode(name, "1.0", nil, nil)}
}

func (p *pacedBatchPAL) Name() string { return p.name }
func (p *pacedBatchPAL) Code() []byte { return p.code }
func (p *pacedBatchPAL) Run(env *flicker.Env, input []byte) ([]byte, error) {
	time.Sleep(p.pace)
	return []byte("ok"), nil
}
func (p *pacedBatchPAL) OpenBatch(env *flicker.Env, header []byte, n int) (any, error) {
	time.Sleep(p.pace)
	return nil, nil
}
func (p *pacedBatchPAL) RunRequest(env *flicker.Env, bctx any, i int, input []byte) ([]byte, error) {
	return []byte("ok"), nil
}
func (p *pacedBatchPAL) CloseBatch(env *flicker.Env, bctx any) ([]byte, error) { return nil, nil }

// runFabricBatched benchmarks the controller's wire-frame coalescer:
// same-PAL runs grouped into runBatch frames, one frame per wire round
// trip, one session (one OpenBatch pace) per frame. Per-op numbers are per
// request, directly comparable against fabric1's per-session numbers.
func runFabricBatched(n, hosts, batch int) (modeResult, error) {
	sw := flicker.NewNetSwitch(0, 0)
	ca, err := flicker.NewPrivacyCA([]byte("benchsessions-fabric"), 0)
	if err != nil {
		return modeResult{}, err
	}
	ctrl, err := flicker.NewFabricController(sw, ca, flicker.FabricControllerConfig{
		Seed:     "benchsessions",
		MaxBatch: batch,
		MaxWait:  2 * time.Millisecond,
		Window:   4,
	})
	if err != nil {
		return modeResult{}, err
	}
	defer ctrl.Close()
	pl := newPacedBatchPAL("paced-batch", 500*time.Microsecond)
	if err := ctrl.RegisterPAL(pl); err != nil {
		return modeResult{}, err
	}
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("host%d", i)
		h, err := flicker.NewFabricHost(sw, ca, flicker.FabricHostConfig{
			Name:     name,
			Platform: flicker.Config{Seed: "benchsessions|" + name, Profile: flicker.ProfileFuture()},
		})
		if err != nil {
			return modeResult{}, err
		}
		defer h.Close()
		if err := h.RegisterPAL(pl); err != nil {
			return modeResult{}, err
		}
		if err := ctrl.Admit(name); err != nil {
			return modeResult{}, err
		}
	}
	if _, err := ctrl.Run(pl.Name(), nil); err != nil {
		return modeResult{}, err
	}
	submitters := 32
	if hosts > 1 {
		submitters = 64
	}
	r, err := measure(1, func() error {
		var wg sync.WaitGroup
		errs := make(chan error, submitters)
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += submitters {
					if _, err := ctrl.Run(pl.Name(), nil); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		return <-errs
	})
	if err != nil {
		return modeResult{}, err
	}
	r.Sessions = n
	r.Hosts = hosts
	r.Batch = batch
	r.NsPerOp /= float64(n)
	r.SessionsPerSec = float64(n) * r.SessionsPerSec
	r.AllocsPerOp /= float64(n)
	r.BytesPerOp /= float64(n)
	return r, nil
}

// runCoreModes runs the single-machine trajectories (classic, pools,
// batching) at the current GOMAXPROCS, tagging each result with the actual
// per-mode GOMAXPROCS and the machine's CPU count. (The old `partitioned`
// mode is retired: RunSessionConcurrent still exists and is tested, but as
// a throughput trajectory it was inconsistent across GOMAXPROCS settings —
// the pool_shards* modes are the scaling story now.)
func runCoreModes(n int, modes map[string]modeResult, suffix string) error {
	hello := demoPAL("hello")
	procs := runtime.GOMAXPROCS(0)
	add := func(name string, r modeResult) {
		r.GOMAXPROCS = procs
		r.NumCPU = runtime.NumCPU()
		// An _mp pass on a 1-CPU machine ran at real parallelism 1: valid
		// numbers, no scaling signal.
		r.DegradedParallelism = suffix != "" && runtime.NumCPU() == 1
		modes[name+suffix] = r
	}

	classic, err := runPlatform(n, func(p *flicker.Platform) error {
		res, err := p.RunSession(hello, flicker.SessionOptions{})
		if err != nil {
			return err
		}
		return res.PALError
	})
	if err != nil {
		return fmt.Errorf("classic: %w", err)
	}
	add("classic", classic)

	for _, shards := range []int{1, 4} {
		r, err := runPool(n, shards)
		if err != nil {
			return fmt.Errorf("pool shards=%d: %w", shards, err)
		}
		// measure ran the whole batch as one op; rescale to per-session.
		r.Sessions = n
		r.NsPerOp /= float64(n)
		r.SessionsPerSec = float64(n) * r.SessionsPerSec
		r.AllocsPerOp /= float64(n)
		r.BytesPerOp /= float64(n)
		add(fmt.Sprintf("pool_shards%d", shards), r)
	}

	// Batched trajectories: requests/s through shared sessions, directly
	// comparable against classic (=batch 1) and pool_shards1 (singleton
	// coalescer-off pool) above.
	for _, batch := range []int{8, 32} {
		r, err := runBatchDirect(n, batch)
		if err != nil {
			return fmt.Errorf("batch_direct%d: %w", batch, err)
		}
		add(fmt.Sprintf("batch_direct%d", batch), r)
	}
	rb, err := runPoolBatched(n, 1, 8)
	if err != nil {
		return fmt.Errorf("pool_batch8: %w", err)
	}
	add("pool_batch8", rb)
	return nil
}

// traceArtifact is the TRACE_sample.json schema: the same TraceData +
// reassembled tree shape `flicker serve` returns from /traces/{id}.
type traceArtifact struct {
	*flicker.TraceData
	Tree *flicker.TraceNode `json:"tree"`
}

func main() {
	out := flag.String("o", "BENCH_sessions.json", "output path")
	n := flag.Int("n", 2000, "sessions per mode")
	traceOut := flag.String("trace-out", "", "also write one fully-assembled sample trace as JSON to this path")
	flag.Parse()

	parallel := runtime.NumCPU()
	report := reportFile{
		GeneratedUnix:      time.Now().Unix(),
		GoVersion:          runtime.Version(),
		GOMAXPROCS:         parallel,
		NumCPU:             parallel,
		GOMAXPROCSPinned:   1,
		GOMAXPROCSParallel: parallel,
		Modes:              map[string]modeResult{},
	}

	// Pass 1 — pinned: legacy mode names, scheduler-neutral.
	prev := runtime.GOMAXPROCS(1)
	if err := runCoreModes(*n, report.Modes, ""); err != nil {
		log.Fatal(err)
	}
	// Pass 2 — real parallelism: same modes, "_mp" suffix.
	runtime.GOMAXPROCS(parallel)
	if err := runCoreModes(*n, report.Modes, "_mp"); err != nil {
		log.Fatal(err)
	}
	// Pass 3 — true shard-parallel: open-loop submitters >= shards at
	// GOMAXPROCS=NumCPU. The pool_shards4_par/pool_shards1_par ratio is
	// the shard-scaling gate (>= 3x with >= 4 CPUs; skipped loudly below
	// when the machine cannot express the parallelism).
	for _, shards := range []int{1, 4} {
		r, err := runPoolParallel(*n, shards)
		if err != nil {
			log.Fatalf("pool_shards%d_par: %v", shards, err)
		}
		r.GOMAXPROCS = parallel
		r.NumCPU = parallel
		r.DegradedParallelism = parallel == 1
		report.Modes[fmt.Sprintf("pool_shards%d_par", shards)] = r
	}
	runtime.GOMAXPROCS(prev)
	if parallel >= 4 {
		fmt.Printf("pool scaling: %0.2fx (pool_shards4_par %0.0f/s over pool_shards1_par %0.0f/s)\n",
			report.Modes["pool_shards4_par"].SessionsPerSec/report.Modes["pool_shards1_par"].SessionsPerSec,
			report.Modes["pool_shards4_par"].SessionsPerSec, report.Modes["pool_shards1_par"].SessionsPerSec)
	} else {
		fmt.Printf("pool scaling: SKIPPED (num_cpu=%d < 4; shard-scaling gate not evaluated)\n", parallel)
	}

	// Fabric trajectories: device-paced sessions scheduled across a
	// quote-verified cluster. fabric4 vs fabric1 is the horizontal-scaling
	// gate (target: >= 3x).
	for _, hosts := range []int{1, 4} {
		r, err := runFabric(*n, hosts)
		if err != nil {
			log.Fatalf("fabric%d: %v", hosts, err)
		}
		r.GOMAXPROCS = parallel
		report.Modes[fmt.Sprintf("fabric%d", hosts)] = r
	}
	fmt.Printf("fabric scaling: %0.2fx (fabric4 %0.0f/s over fabric1 %0.0f/s)\n",
		report.Modes["fabric4"].SessionsPerSec/report.Modes["fabric1"].SessionsPerSec,
		report.Modes["fabric4"].SessionsPerSec, report.Modes["fabric1"].SessionsPerSec)

	// Batched fabric trajectories: same-PAL runs coalesced into runBatch
	// wire frames. fabric_batch8 vs fabric1 is the wire-amortization gate
	// (target: >= 5x requests/s from one frame -> one session per group).
	for _, bm := range []struct {
		name  string
		hosts int
		batch int
	}{
		{"fabric_batch8", 1, 8},
		{"fabric_batch32", 1, 32},
		{"fabric4_batch8", 4, 8},
	} {
		r, err := runFabricBatched(*n, bm.hosts, bm.batch)
		if err != nil {
			log.Fatalf("%s: %v", bm.name, err)
		}
		r.GOMAXPROCS = parallel
		report.Modes[bm.name] = r
	}
	fmt.Printf("fabric batch scaling: %0.2fx (fabric_batch8 %0.0f/s over fabric1 %0.0f/s)\n",
		report.Modes["fabric_batch8"].SessionsPerSec/report.Modes["fabric1"].SessionsPerSec,
		report.Modes["fabric_batch8"].SessionsPerSec, report.Modes["fabric1"].SessionsPerSec)

	// Tracing trajectories: the classic loop with the distributed tracer at
	// three sample rates. The off/baseline ratio is the CI gate — sampling
	// off must cost < 5% — so both sides are re-measured back to back,
	// best-of-3 rounds, to keep scheduler noise out of the comparison.
	var sample *flicker.TraceData
	procs := runtime.GOMAXPROCS(0)
	baseline := modeResult{NsPerOp: math.MaxFloat64}
	traceOff := modeResult{NsPerOp: math.MaxFloat64}
	hello := demoPAL("hello")
	for round := 0; round < 3; round++ {
		rb, err := runPlatform(*n, func(p *flicker.Platform) error {
			res, err := p.RunSession(hello, flicker.SessionOptions{})
			if err != nil {
				return err
			}
			return res.PALError
		})
		if err != nil {
			log.Fatalf("trace baseline: %v", err)
		}
		if rb.NsPerOp < baseline.NsPerOp {
			baseline = rb
		}
		ro, err := runTraced(*n, 0, nil)
		if err != nil {
			log.Fatalf("classic_trace_off: %v", err)
		}
		if ro.NsPerOp < traceOff.NsPerOp {
			traceOff = ro
		}
	}
	traceOff.GOMAXPROCS = procs
	report.Modes["classic_trace_off"] = traceOff
	for _, tm := range []struct {
		name string
		rate float64
		cap  **flicker.TraceData
	}{{"classic_trace_1pct", 0.01, nil}, {"classic_trace_all", 1, &sample}} {
		r, err := runTraced(*n, tm.rate, tm.cap)
		if err != nil {
			log.Fatalf("%s: %v", tm.name, err)
		}
		r.GOMAXPROCS = procs
		report.Modes[tm.name] = r
	}
	fmt.Printf("trace overhead: %0.2f%% sampling-off (%0.0f ns/op traced-off vs %0.0f ns/op baseline)\n",
		(traceOff.NsPerOp-baseline.NsPerOp)/baseline.NsPerOp*100,
		traceOff.NsPerOp, baseline.NsPerOp)

	if *traceOut != "" {
		if sample == nil {
			log.Fatal("classic_trace_all retained no trace to write")
		}
		raw, err := json.MarshalIndent(traceArtifact{TraceData: sample, Tree: sample.Tree()}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote sample trace %s (%d spans) to %s\n", sample.ID, len(sample.Spans), *traceOut)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for name, m := range report.Modes {
		fmt.Printf("%-14s %10.0f sessions/s  %7.1f allocs/op  %9.0f B/op\n",
			name, m.SessionsPerSec, m.AllocsPerOp, m.BytesPerOp)
	}
	fmt.Printf("wrote %s\n", *out)
}
