// Command flickerssh runs the paper's SSH password-authentication protocol
// (Section 6.3.1, Figure 7) over a real TCP connection: the server drives
// the two Flicker sessions on its simulated platform; the client verifies
// the setup attestation before encrypting the password under K_PAL.
//
// Server:  flickerssh -serve 127.0.0.1:9022
// Client:  flickerssh -connect 127.0.0.1:9022 -user alice -password "..."
//
// The demo server is provisioned with user "alice", password
// "correct horse battery staple".
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"net"

	"flicker"
	"flicker/internal/apps/sshauth"
	"flicker/internal/tpm"
)

// Wire messages (gob-encoded, one request/response pair per connection).
type request struct {
	Kind       string // "setup" or "login"
	Nonce      tpm.Digest
	User       string
	Ciphertext []byte
}

type response struct {
	Kind string
	// setup:
	Setup *sshauth.SetupResult
	// login handshake: the server's nonce for the password encryption.
	ServerNonce tpm.Digest
	// login result:
	OK  bool
	Err string
}

func main() {
	log.SetFlags(0)
	serve := flag.String("serve", "", "server mode: address to listen on")
	connect := flag.String("connect", "", "client mode: server address")
	user := flag.String("user", "alice", "client mode: user name")
	password := flag.String("password", "", "client mode: password")
	flag.Parse()
	switch {
	case *serve != "":
		runServer(*serve)
	case *connect != "":
		runClient(*connect, *user, *password)
	default:
		log.Fatal("usage: flickerssh -serve addr | flickerssh -connect addr -user u -password p")
	}
}

func runServer(addr string) {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "flickerssh"})
	if err != nil {
		log.Fatal(err)
	}
	ca, err := flicker.NewPrivacyCA([]byte("flickerssh-ca"), 0)
	if err != nil {
		log.Fatal(err)
	}
	tqd, err := flicker.NewQuoteDaemon(p.OSTPM(), flicker.Digest{}, ca, "flickerssh-server")
	if err != nil {
		log.Fatal(err)
	}
	srv := sshauth.NewServer(p, tqd)
	srv.AddUser("alice", "correct horse battery staple", "a1b2c3d4")

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sshd: listening on %s (user alice provisioned)", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go handle(conn, srv)
	}
}

func handle(conn net.Conn, srv *sshauth.Server) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req request
	if err := dec.Decode(&req); err != nil {
		log.Printf("sshd: bad request: %v", err)
		return
	}
	var resp response
	switch req.Kind {
	case "setup":
		sr, err := srv.Setup(req.Nonce)
		if err != nil {
			resp = response{Kind: "setup", Err: err.Error()}
		} else {
			resp = response{Kind: "setup", Setup: sr}
		}
	case "login-challenge":
		resp = response{Kind: "login-challenge", ServerNonce: srv.FreshNonce()}
	case "login":
		err := srv.Login(req.User, req.Ciphertext, req.Nonce)
		if err != nil {
			resp = response{Kind: "login", OK: false, Err: err.Error()}
		} else {
			resp = response{Kind: "login", OK: true}
		}
	default:
		resp = response{Err: "unknown request"}
	}
	if err := enc.Encode(&resp); err != nil {
		log.Printf("sshd: encoding response: %v", err)
	}
}

// roundTrip opens a connection, sends one request, reads one response.
func roundTrip(addr string, req *request) (*response, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, err
	}
	var resp response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func runClient(addr, user, password string) {
	// The client trusts the demo Privacy CA (same deterministic seed).
	ca, err := flicker.NewPrivacyCA([]byte("flickerssh-ca"), 0)
	if err != nil {
		log.Fatal(err)
	}
	client := sshauth.NewClient(ca.PublicKey(), []byte("flickerssh-client"))

	// 1. Setup: challenge the server and verify the attestation on K_PAL.
	nonce := client.FreshNonce()
	resp, err := roundTrip(addr, &request{Kind: "setup", Nonce: nonce})
	if err != nil {
		log.Fatal(err)
	}
	if resp.Err != "" {
		log.Fatalf("server setup failed: %s", resp.Err)
	}
	if err := client.TrustSetup(resp.Setup, nonce); err != nil {
		log.Fatalf("REFUSING to send password: %v", err)
	}
	fmt.Printf("setup attestation verified; K_PAL is %d-bit and sealed to the login PAL\n",
		resp.Setup.KPAL.N.BitLen())

	// 2. Login: get the server nonce, encrypt {password, nonce}, submit.
	resp, err = roundTrip(addr, &request{Kind: "login-challenge"})
	if err != nil {
		log.Fatal(err)
	}
	serverNonce := resp.ServerNonce
	ct, err := client.Encrypt(password, serverNonce)
	if err != nil {
		log.Fatal(err)
	}
	resp, err = roundTrip(addr, &request{Kind: "login", User: user, Ciphertext: ct, Nonce: serverNonce})
	if err != nil {
		log.Fatal(err)
	}
	if resp.OK {
		fmt.Println("login GRANTED — the cleartext password existed only inside the login PAL")
	} else {
		fmt.Printf("login DENIED: %s\n", resp.Err)
	}
}
