// Command rootkitd is the networked remote-rootkit-detection demo
// (Section 6.1 deployed over a real TCP connection): the host side runs a
// simulated Flicker platform and answers detection queries; the admin side
// connects, challenges with a fresh nonce, verifies the attestation, and
// compares the kernel hash against its known-good value.
//
// Host:   rootkitd -listen 127.0.0.1:9525 [-infect]
// Admin:  rootkitd -query 127.0.0.1:9525
//
// Both sides boot the kernel from the same deterministic seed, which plays
// the role of the admin's golden image of the fleet's kernel build.
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"net"

	"flicker"
	"flicker/internal/apps/rootkit"
	"flicker/internal/core"
	"flicker/internal/tpm"
)

// wire types exchanged over the TCP connection.
type queryRequest struct {
	Nonce   tpm.Digest
	Regions [][2]uint32
}

type queryResponse struct {
	Report *rootkit.Report
	Err    string
}

// fleetSeed is the deterministic kernel build both sides know.
const fleetSeed = "fleet-kernel-2.6.20"

func bootFleetPlatform() (*core.Platform, error) {
	p, err := flicker.NewPlatform(flicker.Config{Seed: fleetSeed, MemSize: 64 << 20})
	if err != nil {
		return nil, err
	}
	for _, m := range []struct {
		name string
		size int
	}{{"ext3", 96 * 1024}, {"e1000", 128 * 1024}, {"tpm_tis", 32 * 1024}} {
		if _, err := p.Kernel.LoadModule(m.name, m.size); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", "", "host mode: address to listen on")
	query := flag.String("query", "", "admin mode: host address to query")
	infect := flag.Bool("infect", false, "host mode: install a rootkit before serving")
	flag.Parse()

	switch {
	case *listen != "":
		runHost(*listen, *infect)
	case *query != "":
		runAdmin(*query)
	default:
		log.Fatal("usage: rootkitd -listen addr [-infect] | rootkitd -query addr")
	}
}

func runHost(addr string, infect bool) {
	p, err := bootFleetPlatform()
	if err != nil {
		log.Fatal(err)
	}
	ca, err := flicker.NewPrivacyCA([]byte("fleet-privacy-ca"), 0)
	if err != nil {
		log.Fatal(err)
	}
	tqd, err := flicker.NewQuoteDaemon(p.OSTPM(), flicker.Digest{}, ca, "fleet-host")
	if err != nil {
		log.Fatal(err)
	}
	host := rootkit.NewHost(p, tqd)
	if infect {
		if err := p.Kernel.InstallRootkit("adore-ng", []int{2, 11, 39}); err != nil {
			log.Fatal(err)
		}
		log.Printf("host: rootkit installed (syscalls 2, 11, 39 hooked)")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("host: serving detection queries on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go serveOne(conn, host)
	}
}

func serveOne(conn net.Conn, host *rootkit.Host) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req queryRequest
	if err := dec.Decode(&req); err != nil {
		log.Printf("host: bad request: %v", err)
		return
	}
	report, err := host.HandleQuery(req.Regions, req.Nonce)
	resp := queryResponse{Report: report}
	if err != nil {
		resp.Err = err.Error()
	}
	if err := enc.Encode(&resp); err != nil {
		log.Printf("host: sending response: %v", err)
	}
}

func runAdmin(addr string) {
	// The admin derives the known-good hash and the expected regions from
	// its golden image.
	golden, err := bootFleetPlatform()
	if err != nil {
		log.Fatal(err)
	}
	known, err := rootkit.KnownGoodFor(golden.Kernel)
	if err != nil {
		log.Fatal(err)
	}
	ca, err := flicker.NewPrivacyCA([]byte("fleet-privacy-ca"), 0)
	if err != nil {
		log.Fatal(err)
	}
	admin := rootkit.NewAdmin(ca.PublicKey(), []byte("fleet-admin"))
	admin.AddKnownGood(known)
	regions := golden.Kernel.MeasurableRegions()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	nonce := flicker.SHA1Sum([]byte("admin-" + addr))
	if err := gob.NewEncoder(conn).Encode(&queryRequest{Nonce: nonce, Regions: regions}); err != nil {
		log.Fatal(err)
	}
	var resp queryResponse
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		log.Fatal(err)
	}
	if resp.Err != "" {
		log.Fatalf("host returned error: %s", resp.Err)
	}
	out := admin.VerifyReport(resp.Report, nonce, regions)
	fmt.Printf("attestation verified: %v\n", out.Verified)
	fmt.Printf("kernel clean:         %v\n", out.Clean)
	fmt.Printf("kernel digest:        %x\n", out.Digest)
	if out.Err != nil {
		fmt.Printf("verification error:   %v\n", out.Err)
	}
	if out.Verified && !out.Clean {
		fmt.Println("VERDICT: host is compromised — deny VPN access")
	} else if out.Verified {
		fmt.Println("VERDICT: host kernel matches the golden image")
	} else {
		fmt.Println("VERDICT: host cannot be trusted (attestation failed)")
	}
}
