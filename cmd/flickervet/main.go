// Command flickervet runs the module's security-invariant analyzers and the
// static TCB accountant (internal/analysis).
//
// Modes:
//
//	flickervet ./...                      run all analyzers, print findings
//	flickervet -list                      print the analyzer catalog
//	flickervet -run walltime ./...        run a subset (comma-separated)
//	flickervet -json VET_report.json ./...
//	                                      also write the machine-readable
//	                                      report (per-analyzer counts, every
//	                                      finding with its sink chain, every
//	                                      suppression with its reason)
//	flickervet -tcbreport -o TCB_report.json -budget tcb_budget.json ./...
//	                                      emit the per-PAL TCB report and
//	                                      enforce the tracked line budgets
//
// Exit status: 0 clean, 1 findings or budget violations, 2 usage or load
// errors. CI runs both modes; a PAL whose reachable line count grows past
// its tcb_budget.json entry fails the build until the budget is changed in
// a reviewed diff, and VET_report.json is uploaded as an artifact with the
// build gated on zero unsuppressed findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"flicker/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list      = flag.Bool("list", false, "print the analyzer catalog and exit")
		runNames  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		tcbreport = flag.Bool("tcbreport", false, "emit the per-PAL static TCB report instead of analyzing")
		out       = flag.String("o", "", "with -tcbreport: write the JSON report to this file (default stdout)")
		budget    = flag.String("budget", "", "with -tcbreport: enforce per-PAL line budgets from this JSON file")
		jsonOut   = flag.String("json", "", "write the machine-readable VET report to this file")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: flickervet [-list] [-run names] [-json file] [-tcbreport [-o file] [-budget file]] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flickervet:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flickervet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flickervet:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flickervet:", err)
		return 2
	}

	// Type errors anywhere are load failures: analyzers and the call graph
	// are only trustworthy over fully checked code.
	broken := 0
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "flickervet: %s: %v\n", p.Path, te)
			broken++
		}
	}
	if broken > 0 {
		return 2
	}

	if *tcbreport {
		return runTCBReport(loader, pkgs, *out, *budget)
	}

	analyzers := analysis.All()
	if *runNames != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, n := range strings.Split(*runNames, ",") {
			n = strings.TrimSpace(n)
			a, ok := byName[n]
			if !ok {
				fmt.Fprintf(os.Stderr, "flickervet: unknown analyzer %q (see -list)\n", n)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	diags, rep := analysis.RunReport(loader, pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if *jsonOut != "" {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "flickervet:", err)
			return 2
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "flickervet:", err)
			return 2
		}
	}
	if n := len(rep.Suppress); n > 0 {
		fmt.Fprintf(os.Stderr, "flickervet: %d suppressed finding(s) under //flickervet:allow\n", n)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "flickervet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func runTCBReport(loader *analysis.Loader, pkgs []*analysis.Package, out, budgetPath string) int {
	rep, err := analysis.BuildTCBReport(loader, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flickervet:", err)
		return 2
	}

	status := 0
	if budgetPath != "" {
		b, err := analysis.LoadTCBBudget(budgetPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flickervet:", err)
			return 2
		}
		for _, verr := range analysis.CheckTCBBudget(rep, b) {
			fmt.Fprintln(os.Stderr, "flickervet:", verr)
			status = 1
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "flickervet:", err)
		return 2
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "flickervet:", err)
		return 2
	}

	for _, e := range rep.Entries {
		over := ""
		if e.BudgetLines > 0 && e.Lines > e.BudgetLines {
			over = "  OVER BUDGET"
		}
		fmt.Fprintf(os.Stderr, "flickervet: tcb %-18s %4d funcs %6d lines (budget %d)%s\n",
			e.PAL, e.Functions, e.Lines, e.BudgetLines, over)
	}
	return status
}
