package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flicker"
)

// servePlatform boots a platform and runs one demo session so the metrics
// have samples to expose.
func servePlatform(t *testing.T) *flicker.Platform {
	t.Helper()
	p, err := flicker.NewPlatform(flicker.Config{Seed: "serve-test"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := demoPAL("hello")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunSession(target, flicker.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError != nil {
		t.Fatal(res.PALError)
	}
	return p
}

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestServeMetricsEndpoint(t *testing.T) {
	mux := newServeMux(servePlatform(t), nil)
	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body := rec.Body.String()
	for _, family := range []string{
		"flicker_tpm_command_seconds",
		"flicker_dev_violations_total",
		"flicker_session_phase_seconds",
		"flicker_tpm_commands_total",
		"flicker_sessions_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing family %q", family)
		}
	}
	// A session ran, so the exposition must carry real samples, not just
	// headers: at least one TPM command series and a session count.
	if !strings.Contains(body, `flicker_sessions_total{pipeline="classic",result="ok"} 1`) {
		t.Errorf("/metrics missing completed-session sample:\n%s", body)
	}
}

func TestServeStatsEndpoint(t *testing.T) {
	mux := newServeMux(servePlatform(t), nil)
	rec := get(t, mux, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", rec.Code)
	}
	var got statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	if got.Sessions.Sessions != 1 {
		t.Errorf("stats.sessions.Sessions = %d, want 1", got.Sessions.Sessions)
	}
	if len(got.Metrics.Families) == 0 {
		t.Error("stats.metrics has no families")
	}
}

func TestServeHealthAndEvents(t *testing.T) {
	mux := newServeMux(servePlatform(t), nil)

	rec := get(t, mux, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", rec.Code)
	}
	var health healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	if health.Status != "ok" || health.Sessions != 1 {
		t.Errorf("healthz = %+v, want status ok with 1 session", health)
	}

	rec = get(t, mux, "/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /events = %d, want 200", rec.Code)
	}
	var events []flicker.SecurityEvent
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("decode /events: %v", err)
	}
	// A clean hello session still resets PCR 17 via the locality-4 hash
	// sequence, so the log is non-empty.
	found := false
	for _, e := range events {
		if e.Kind == "pcr17-reset" {
			found = true
		}
	}
	if !found {
		t.Errorf("/events has no pcr17-reset entry: %+v", events)
	}
}

func TestServeRejectsWrites(t *testing.T) {
	mux := newServeMux(servePlatform(t), nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", strings.NewReader("x")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

// servePool boots a sharded pool and runs a few demo sessions through it.
func servePool(t *testing.T, shards, sessions int) *flicker.Pool {
	t.Helper()
	pool, err := flicker.NewPool(flicker.PoolConfig{
		Shards:   shards,
		Platform: flicker.Config{Seed: "serve-pool-test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	target, err := demoPAL("hello")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sessions; i++ {
		res, err := pool.Run(target, flicker.SessionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.PALError != nil {
			t.Fatal(res.PALError)
		}
	}
	return pool
}

func TestServePoolEndpoints(t *testing.T) {
	mux := newPoolServeMux(servePool(t, 3, 4), nil)

	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	body := rec.Body.String()
	for _, family := range []string{
		"flicker_pool_submissions_total",
		"flicker_sessions_total",
		"flicker_tpm_commands_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("pool /metrics missing family %q", family)
		}
	}

	rec = get(t, mux, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", rec.Code)
	}
	var stats poolStatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decode pool /stats: %v", err)
	}
	if stats.Pool.Shards != 3 || stats.Pool.Sessions != 4 {
		t.Errorf("pool stats = %+v, want 3 shards / 4 sessions", stats.Pool)
	}
	if len(stats.Pool.PerShard) != 3 {
		t.Errorf("per-shard stats = %d entries, want 3", len(stats.Pool.PerShard))
	}

	rec = get(t, mux, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", rec.Code)
	}
	var health healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("decode pool /healthz: %v", err)
	}
	if health.Status != "ok" || health.Sessions != 4 || health.Shards != 3 {
		t.Errorf("pool healthz = %+v, want ok/4 sessions/3 shards", health)
	}

	rec = get(t, mux, "/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /events = %d, want 200", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/stats", strings.NewReader("x")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST pool /stats = %d, want 405", rec.Code)
	}
}

// serveFabric stands up a small in-process fabric and pushes a few
// sessions through it.
func serveFabric(t *testing.T, hosts, sessions int, sample float64) (*flicker.FabricController, *http.ServeMux) {
	t.Helper()
	target, err := demoPAL("hello")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, mux, err := buildFabric(hosts, "hello", target, nil, sample, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	for i := 0; i < sessions; i++ {
		if _, err := ctrl.Run("hello", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	return ctrl, mux
}

func TestServeFabricEndpoints(t *testing.T) {
	_, mux := serveFabric(t, 2, 3, 0)

	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	body := rec.Body.String()
	for _, family := range []string{
		"flicker_fabric_admissions_total",
		"flicker_fabric_runs_total",
		"flicker_net_roundtrips_total",
		"flicker_sessions_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("fabric /metrics missing family %q", family)
		}
	}

	rec = get(t, mux, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", rec.Code)
	}
	var stats fabricStatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decode fabric /stats: %v", err)
	}
	if stats.Fabric.Hosts != 2 || stats.Fabric.Live != 2 {
		t.Errorf("fabric stats = %+v, want 2 hosts / 2 live", stats.Fabric)
	}
	if stats.Fabric.Sessions != 3 || stats.Fabric.AdmissionsOK != 2 {
		t.Errorf("fabric stats = %+v, want 3 sessions / 2 admissions", stats.Fabric)
	}

	rec = get(t, mux, "/hosts")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /hosts = %d, want 200", rec.Code)
	}
	var members []flicker.FabricHostStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &members); err != nil {
		t.Fatalf("decode /hosts: %v", err)
	}
	if len(members) != 2 {
		t.Fatalf("/hosts lists %d members, want 2", len(members))
	}
	for _, m := range members {
		if m.State != "admitted" {
			t.Errorf("host %s state = %q, want admitted", m.Name, m.State)
		}
		if len(m.PALs) == 0 {
			t.Errorf("host %s advertises no PALs", m.Name)
		}
	}

	rec = get(t, mux, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", rec.Code)
	}
	var health fabricHealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("decode fabric /healthz: %v", err)
	}
	if health.Status != "ok" || health.Hosts != 2 || health.Live != 2 {
		t.Errorf("fabric healthz = %+v, want ok/2/2", health)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/hosts", strings.NewReader("x")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /hosts = %d, want 405", rec.Code)
	}
}

// The /events filters: ?kind= keeps only one event kind, ?n= the most
// recent n entries.
func TestServeEventsFilters(t *testing.T) {
	p := servePlatform(t)
	// A second session appends a second pcr17-reset event, giving ?n= a
	// log deep enough to truncate.
	target, err := demoPAL("hello")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunSession(target, flicker.SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	mux := newServeMux(p, nil)

	var events []flicker.SecurityEvent
	if err := json.Unmarshal(get(t, mux, "/events?kind=pcr17-reset").Body.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("/events?kind=pcr17-reset is empty")
	}
	for _, e := range events {
		if e.Kind != "pcr17-reset" {
			t.Errorf("kind filter leaked %+v", e)
		}
	}

	var all, last []flicker.SecurityEvent
	if err := json.Unmarshal(get(t, mux, "/events").Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(get(t, mux, "/events?n=1").Body.Bytes(), &last); err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatalf("want at least 2 events to exercise ?n=, got %d", len(all))
	}
	if len(last) != 1 || last[0] != all[len(all)-1] {
		t.Errorf("/events?n=1 = %+v, want the newest of %d events", last, len(all))
	}

	if err := json.Unmarshal(get(t, mux, "/events?kind=no-such-kind").Body.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("bogus kind filter returned %+v", events)
	}
}

// A traced platform serve exposes its flight recorder: /traces lists the
// session roots (filterable by PAL and outcome) and /traces/{id} returns
// the reassembled span tree.
func TestServeTraceEndpoints(t *testing.T) {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "serve-trace-test"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := demoPAL("hello")
	if err != nil {
		t.Fatal(err)
	}
	tracer, rec := localTracer(p.Clock.Now, 1.0, 0)
	runOnce := traceRunOnce(tracer, "hello", func(o flicker.SessionOptions) error {
		res, err := p.RunSession(target, o)
		if err != nil {
			return err
		}
		return res.PALError
	}, flicker.SessionOptions{})
	for i := 0; i < 3; i++ {
		if err := runOnce(); err != nil {
			t.Fatal(err)
		}
	}
	mux := newServeMux(p, rec)

	var list []traceSummary
	if err := json.Unmarshal(get(t, mux, "/traces?pal=hello&outcome=ok").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("/traces lists %d roots, want 3: %+v", len(list), list)
	}
	for _, s := range list {
		if s.Name != "serve.run" || s.Outcome != "ok" || s.PAL != "hello" || s.Spans < 3 {
			t.Errorf("trace summary = %+v", s)
		}
	}

	if err := json.Unmarshal(get(t, mux, "/traces?pal=no-such-pal").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Errorf("PAL filter leaked %+v", list)
	}

	if err := json.Unmarshal(get(t, mux, "/traces").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	detail := get(t, mux, "/traces/"+list[0].ID)
	if detail.Code != http.StatusOK {
		t.Fatalf("GET /traces/%s = %d, want 200", list[0].ID, detail.Code)
	}
	var td struct {
		ID   string             `json:"trace_id"`
		Tree *flicker.TraceNode `json:"tree"`
	}
	if err := json.Unmarshal(detail.Body.Bytes(), &td); err != nil {
		t.Fatalf("decode trace detail: %v", err)
	}
	if td.Tree == nil || td.Tree.Name != "serve.run" || len(td.Tree.Children) == 0 {
		t.Fatalf("trace tree = %+v, want serve.run root with children", td.Tree)
	}

	if got := get(t, mux, "/traces/ffffffffffffffff").Code; got != http.StatusNotFound {
		t.Errorf("GET /traces/<unknown> = %d, want 404", got)
	}
}

// With tracing off the endpoint surface stays stable: /traces serves an
// empty listing and every ID 404s.
func TestServeTraceEndpointsDisabled(t *testing.T) {
	mux := newServeMux(servePlatform(t), nil)
	var list []traceSummary
	if err := json.Unmarshal(get(t, mux, "/traces").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Errorf("/traces with tracing off = %+v", list)
	}
	if got := get(t, mux, "/traces/0000000000000001").Code; got != http.StatusNotFound {
		t.Errorf("GET /traces/{id} with tracing off = %d, want 404", got)
	}
}

// A traced fabric serve surfaces controller-assembled traces that span the
// wire: the detail tree reaches the remote host's session spans.
func TestServeFabricTraceEndpoints(t *testing.T) {
	_, mux := serveFabric(t, 2, 2, 1.0)
	var list []traceSummary
	if err := json.Unmarshal(get(t, mux, "/traces?outcome=ok").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) < 2 {
		t.Fatalf("fabric /traces lists %d roots, want >= 2", len(list))
	}
	detail := get(t, mux, "/traces/"+list[0].ID)
	if detail.Code != http.StatusOK {
		t.Fatalf("GET /traces/%s = %d, want 200", list[0].ID, detail.Code)
	}
	body := detail.Body.String()
	for _, span := range []string{"fabric.run", "host.run", `"session"`, "skinit"} {
		if !strings.Contains(body, span) {
			t.Errorf("fabric trace detail missing span %q", span)
		}
	}
}

// The fleet-aware health endpoint degrades when a member is lost and goes
// down when none remain.
func TestServeFabricHealthDegrades(t *testing.T) {
	ctrl, mux := serveFabric(t, 1, 1, 0)
	var health fabricHealthResponse
	if err := json.Unmarshal(get(t, mux, "/healthz").Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("healthz before drain = %+v", health)
	}
	if err := ctrl.Drain("host0"); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(get(t, mux, "/healthz").Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "down" || health.Live != 0 {
		t.Fatalf("healthz after draining the only host = %+v, want down/0 live", health)
	}
}
