package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flicker"
)

// servePlatform boots a platform and runs one demo session so the metrics
// have samples to expose.
func servePlatform(t *testing.T) *flicker.Platform {
	t.Helper()
	p, err := flicker.NewPlatform(flicker.Config{Seed: "serve-test"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := demoPAL("hello")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunSession(target, flicker.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError != nil {
		t.Fatal(res.PALError)
	}
	return p
}

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestServeMetricsEndpoint(t *testing.T) {
	mux := newServeMux(servePlatform(t))
	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body := rec.Body.String()
	for _, family := range []string{
		"flicker_tpm_command_seconds",
		"flicker_dev_violations_total",
		"flicker_session_phase_seconds",
		"flicker_tpm_commands_total",
		"flicker_sessions_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing family %q", family)
		}
	}
	// A session ran, so the exposition must carry real samples, not just
	// headers: at least one TPM command series and a session count.
	if !strings.Contains(body, `flicker_sessions_total{pipeline="classic",result="ok"} 1`) {
		t.Errorf("/metrics missing completed-session sample:\n%s", body)
	}
}

func TestServeStatsEndpoint(t *testing.T) {
	mux := newServeMux(servePlatform(t))
	rec := get(t, mux, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", rec.Code)
	}
	var got statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	if got.Sessions.Sessions != 1 {
		t.Errorf("stats.sessions.Sessions = %d, want 1", got.Sessions.Sessions)
	}
	if len(got.Metrics.Families) == 0 {
		t.Error("stats.metrics has no families")
	}
}

func TestServeHealthAndEvents(t *testing.T) {
	mux := newServeMux(servePlatform(t))

	rec := get(t, mux, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", rec.Code)
	}
	var health healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	if health.Status != "ok" || health.Sessions != 1 {
		t.Errorf("healthz = %+v, want status ok with 1 session", health)
	}

	rec = get(t, mux, "/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /events = %d, want 200", rec.Code)
	}
	var events []flicker.SecurityEvent
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("decode /events: %v", err)
	}
	// A clean hello session still resets PCR 17 via the locality-4 hash
	// sequence, so the log is non-empty.
	found := false
	for _, e := range events {
		if e.Kind == "pcr17-reset" {
			found = true
		}
	}
	if !found {
		t.Errorf("/events has no pcr17-reset entry: %+v", events)
	}
}

func TestServeRejectsWrites(t *testing.T) {
	mux := newServeMux(servePlatform(t))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", strings.NewReader("x")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

// servePool boots a sharded pool and runs a few demo sessions through it.
func servePool(t *testing.T, shards, sessions int) *flicker.Pool {
	t.Helper()
	pool, err := flicker.NewPool(flicker.PoolConfig{
		Shards:   shards,
		Platform: flicker.Config{Seed: "serve-pool-test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	target, err := demoPAL("hello")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sessions; i++ {
		res, err := pool.Run(target, flicker.SessionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.PALError != nil {
			t.Fatal(res.PALError)
		}
	}
	return pool
}

func TestServePoolEndpoints(t *testing.T) {
	mux := newPoolServeMux(servePool(t, 3, 4))

	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	body := rec.Body.String()
	for _, family := range []string{
		"flicker_pool_submissions_total",
		"flicker_sessions_total",
		"flicker_tpm_commands_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("pool /metrics missing family %q", family)
		}
	}

	rec = get(t, mux, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", rec.Code)
	}
	var stats poolStatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decode pool /stats: %v", err)
	}
	if stats.Pool.Shards != 3 || stats.Pool.Sessions != 4 {
		t.Errorf("pool stats = %+v, want 3 shards / 4 sessions", stats.Pool)
	}
	if len(stats.Pool.PerShard) != 3 {
		t.Errorf("per-shard stats = %d entries, want 3", len(stats.Pool.PerShard))
	}

	rec = get(t, mux, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", rec.Code)
	}
	var health healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("decode pool /healthz: %v", err)
	}
	if health.Status != "ok" || health.Sessions != 4 || health.Shards != 3 {
		t.Errorf("pool healthz = %+v, want ok/4 sessions/3 shards", health)
	}

	rec = get(t, mux, "/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /events = %d, want 200", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/stats", strings.NewReader("x")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST pool /stats = %d, want 405", rec.Code)
	}
}
