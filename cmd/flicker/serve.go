// flicker serve: run Flicker sessions while exposing the platform's
// observability surface over HTTP — Prometheus text exposition on /metrics,
// a JSON view of Platform.Stats() plus the full registry on /stats, the
// security event log on /events, and a liveness probe on /healthz.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"flicker"
)

// statsResponse is the /stats payload: session aggregates plus every metric
// family in the registry.
type statsResponse struct {
	Sessions flicker.SessionStats    `json:"sessions"`
	Metrics  flicker.MetricsSnapshot `json:"metrics"`
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
	Aborted  int    `json:"aborted"`
	Shards   int    `json:"shards,omitempty"`
}

// poolStatsResponse is the /stats payload in sharded mode: fleet-level
// aggregates plus the shared registry.
type poolStatsResponse struct {
	Pool    flicker.PoolStats       `json:"pool"`
	Metrics flicker.MetricsSnapshot `json:"metrics"`
}

// newPoolServeMux is newServeMux for a sharded pool: the same endpoint
// surface, backed by the shared registry and event log all shards fold
// into.
func newPoolServeMux(p *flicker.Pool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := p.Metrics().WritePrometheus(w); err != nil {
			log.Printf("serve: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		writeJSON(w, poolStatsResponse{Pool: p.Stats(), Metrics: p.Metrics().Snapshot()})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		events := p.Events().Events()
		if events == nil {
			events = []flicker.SecurityEvent{}
		}
		writeJSON(w, events)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		st := p.Stats()
		writeJSON(w, healthResponse{
			Status: "ok", Sessions: st.Sessions, Aborted: st.Aborted, Shards: st.Shards,
		})
	})
	return mux
}

// newServeMux builds the exposition handler for a platform. Split out from
// cmdServe so tests can drive it through httptest without binding a port.
func newServeMux(p *flicker.Platform) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := p.Metrics.WritePrometheus(w); err != nil {
			log.Printf("serve: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		writeJSON(w, statsResponse{Sessions: p.Stats(), Metrics: p.Metrics.Snapshot()})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		events := p.Events.Events()
		if events == nil {
			events = []flicker.SecurityEvent{}
		}
		writeJSON(w, events)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		st := p.Stats()
		writeJSON(w, healthResponse{Status: "ok", Sessions: st.Sessions, Aborted: st.Aborted})
	})
	return mux
}

// allowGet rejects non-read methods with 405.
func allowGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}

// writeJSON renders v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("serve: encode: %v", err)
	}
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9464", "listen address (use :0 for an ephemeral port)")
	palName := fs.String("pal", "hello", "demo PAL to run: hello, echo, seal")
	input := fs.String("input", "serve", "PAL input string")
	profile := fs.String("profile", "broadcom", "latency profile: broadcom, infineon, future")
	warm := fs.Int("sessions", 3, "sessions to run before serving (populates the metrics)")
	interval := fs.Duration("interval", 0, "keep running a session this often while serving (0 = only the warm-up sessions)")
	shards := fs.Int("shards", 1, "number of independent platforms behind a session pool (1 = single platform)")
	batch := fs.Int("batch", 1, "max requests coalesced into one session per shard (requires -shards mode; >1 enables the coalescer)")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "how long a shard holds a lone request hoping to form a batch")
	fs.Parse(args)

	prof, err := profileByName(*profile)
	if err != nil {
		log.Fatal(err)
	}
	target, err := demoPAL(*palName)
	if err != nil {
		log.Fatal(err)
	}
	nonce := flicker.SHA1Sum([]byte("serve-nonce"))
	opts := flicker.SessionOptions{Input: []byte(*input), Nonce: &nonce}
	if *batch > 1 {
		// A verifier nonce binds one attestation to one session, so nonce-
		// carrying requests are never coalesced; drop it in batch mode.
		opts.Nonce = nil
	}

	// Single-platform and sharded-pool modes expose the same endpoints;
	// sharded mode serves the shared registry all platforms fold into.
	var (
		runOnce func() error
		mux     *http.ServeMux
	)
	if *shards > 1 || *batch > 1 {
		pool, err := flicker.NewPool(flicker.PoolConfig{
			Shards:   *shards,
			MaxBatch: *batch,
			MaxWait:  *batchWait,
			Platform: flicker.Config{Seed: "serve", Profile: prof},
		})
		if err != nil {
			log.Fatal(err)
		}
		runOnce = func() error {
			res, err := pool.Run(target, opts)
			if err != nil {
				return err
			}
			return res.PALError
		}
		mux = newPoolServeMux(pool)
	} else {
		p, err := flicker.NewPlatform(flicker.Config{Seed: "serve", Profile: prof})
		if err != nil {
			log.Fatal(err)
		}
		runOnce = func() error {
			res, err := p.RunSession(target, opts)
			if err != nil {
				return err
			}
			return res.PALError
		}
		mux = newServeMux(p)
	}

	for i := 0; i < *warm; i++ {
		if err := runOnce(); err != nil {
			log.Fatalf("serve: warm-up session %d: %v", i+1, err)
		}
	}
	if *interval > 0 {
		// In batch mode the coalescer can only form groups from requests
		// that are in flight together, so submit concurrently (bounded)
		// instead of one blocking session per tick.
		inflight := make(chan struct{}, 2*(*batch))
		go func() {
			for range time.Tick(*interval) {
				if *batch > 1 {
					select {
					case inflight <- struct{}{}:
						go func() {
							defer func() { <-inflight }()
							if err := runOnce(); err != nil {
								log.Printf("serve: background session: %v", err)
							}
						}()
					default: // saturated: skip the tick rather than queue unboundedly
					}
					continue
				}
				if err := runOnce(); err != nil {
					log.Printf("serve: background session: %v", err)
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flicker serve: %d warm-up session(s) done on %d shard(s); listening on http://%s\n",
		*warm, *shards, ln.Addr())
	fmt.Println("endpoints: /metrics (Prometheus), /stats (JSON), /events (JSON), /healthz")
	log.Fatal(http.Serve(ln, mux))
}
