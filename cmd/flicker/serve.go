// flicker serve: run Flicker sessions while exposing the platform's
// observability surface over HTTP — Prometheus text exposition on /metrics,
// a JSON view of Platform.Stats() plus the full registry on /stats, the
// security event log on /events (filterable with ?n= and ?kind=), a
// liveness probe on /healthz, and — when -trace-sample > 0 — the
// distributed-trace flight recorder on /traces and /traces/{id}.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"flicker"
)

// statsResponse is the /stats payload: session aggregates plus every metric
// family in the registry.
type statsResponse struct {
	Sessions flicker.SessionStats    `json:"sessions"`
	Metrics  flicker.MetricsSnapshot `json:"metrics"`
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
	Aborted  int    `json:"aborted"`
	Shards   int    `json:"shards,omitempty"`
}

// poolStatsResponse is the /stats payload in sharded mode: fleet-level
// aggregates plus the shared registry.
type poolStatsResponse struct {
	Pool    flicker.PoolStats       `json:"pool"`
	Metrics flicker.MetricsSnapshot `json:"metrics"`
}

// traceSummary is one row of the /traces listing.
type traceSummary struct {
	ID         string  `json:"trace_id"`
	Name       string  `json:"name"`
	PAL        string  `json:"pal,omitempty"`
	Outcome    string  `json:"outcome"`
	Trigger    string  `json:"trigger,omitempty"`
	Error      string  `json:"error,omitempty"`
	StartMs    float64 `json:"start_ms"`
	DurationMs float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
}

// traceDetail is the /traces/{id} payload: the flat trace plus its
// reassembled tree.
type traceDetail struct {
	*flicker.TraceData
	Tree *flicker.TraceNode `json:"tree"`
}

// addTraceEndpoints wires /traces (recent roots, ?n= / ?pal= / ?outcome=
// filters) and /traces/{id} (full span tree) onto a mux. A nil recorder —
// tracing disabled — serves an empty listing and 404s every ID, so the
// endpoint surface is stable across configurations.
func addTraceEndpoints(mux *http.ServeMux, fr *flicker.TraceFlightRecorder) {
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		q := r.URL.Query()
		n, _ := strconv.Atoi(q.Get("n"))
		out := make([]traceSummary, 0, 16)
		for _, td := range fr.Recent(n, q.Get("pal"), q.Get("outcome")) {
			out = append(out, traceSummary{
				ID:         td.ID,
				Name:       td.Name,
				PAL:        td.Attr("pal"),
				Outcome:    td.Outcome(),
				Trigger:    td.Trigger,
				Error:      td.Err,
				StartMs:    float64(td.Start) / float64(time.Millisecond),
				DurationMs: float64(td.Duration) / float64(time.Millisecond),
				Spans:      len(td.Spans),
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/traces/", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		id := strings.TrimPrefix(r.URL.Path, "/traces/")
		td := fr.Get(id)
		if td == nil {
			http.Error(w, "no retained trace with id "+id, http.StatusNotFound)
			return
		}
		writeJSON(w, traceDetail{TraceData: td, Tree: td.Tree()})
	})
}

// eventsHandler serves the security event log with ?n= (most recent n) and
// ?kind= (exact event kind) filters. Events linked to a trace carry its
// trace_id, resolvable at /traces/{id}.
func eventsHandler(get func() []flicker.SecurityEvent) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		evs := get()
		if kind := r.URL.Query().Get("kind"); kind != "" {
			kept := evs[:0:0]
			for _, ev := range evs {
				if ev.Kind == kind {
					kept = append(kept, ev)
				}
			}
			evs = kept
		}
		if n, _ := strconv.Atoi(r.URL.Query().Get("n")); n > 0 && len(evs) > n {
			evs = evs[len(evs)-n:]
		}
		if evs == nil {
			evs = []flicker.SecurityEvent{}
		}
		writeJSON(w, evs)
	}
}

// newPoolServeMux is newServeMux for a sharded pool: the same endpoint
// surface, backed by the shared registry and event log all shards fold
// into.
func newPoolServeMux(p *flicker.Pool, fr *flicker.TraceFlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := p.Metrics().WritePrometheus(w); err != nil {
			log.Printf("serve: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		writeJSON(w, poolStatsResponse{Pool: p.Stats(), Metrics: p.Metrics().Snapshot()})
	})
	mux.HandleFunc("/events", eventsHandler(p.Events().Events))
	addTraceEndpoints(mux, fr)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		st := p.Stats()
		writeJSON(w, healthResponse{
			Status: "ok", Sessions: st.Sessions, Aborted: st.Aborted, Shards: st.Shards,
		})
	})
	return mux
}

// fabricStatsResponse is the /stats payload in fabric mode: controller
// fleet accounting plus the shared registry.
type fabricStatsResponse struct {
	Fabric  flicker.FabricStats     `json:"fabric"`
	Metrics flicker.MetricsSnapshot `json:"metrics"`
}

// fabricHealthResponse is the fleet-aware /healthz payload: a fabric is
// healthy while at least one admitted host can take work, degraded while
// some members are lost/draining, down when none remain.
type fabricHealthResponse struct {
	Status   string `json:"status"`
	Hosts    int    `json:"hosts"`
	Live     int    `json:"live"`
	Sessions int64  `json:"sessions"`
}

// newFabricServeMux is the exposition surface for an in-process fabric
// cluster: the usual /metrics, /stats, /events, /healthz (all fleet-aware)
// plus /hosts, which lists every member with its attestation status.
func newFabricServeMux(ctrl *flicker.FabricController, reg *flicker.MetricsRegistry, events *flicker.SecurityEventLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("serve: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		writeJSON(w, fabricStatsResponse{Fabric: ctrl.Stats(), Metrics: reg.Snapshot()})
	})
	mux.HandleFunc("/hosts", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		hosts := ctrl.Hosts()
		if hosts == nil {
			hosts = []flicker.FabricHostStatus{}
		}
		writeJSON(w, hosts)
	})
	mux.HandleFunc("/events", eventsHandler(events.Events))
	addTraceEndpoints(mux, ctrl.Traces())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		st := ctrl.Stats()
		status := "ok"
		switch {
		case st.Live == 0:
			status = "down"
		case st.Live < st.Hosts:
			status = "degraded"
		}
		writeJSON(w, fabricHealthResponse{
			Status: status, Hosts: st.Hosts, Live: st.Live, Sessions: st.Sessions,
		})
	})
	return mux
}

// newServeMux builds the exposition handler for a platform. Split out from
// cmdServe so tests can drive it through httptest without binding a port.
func newServeMux(p *flicker.Platform, fr *flicker.TraceFlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := p.Metrics.WritePrometheus(w); err != nil {
			log.Printf("serve: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		writeJSON(w, statsResponse{Sessions: p.Stats(), Metrics: p.Metrics.Snapshot()})
	})
	mux.HandleFunc("/events", eventsHandler(p.Events.Events))
	addTraceEndpoints(mux, fr)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		st := p.Stats()
		writeJSON(w, healthResponse{Status: "ok", Sessions: st.Sessions, Aborted: st.Aborted})
	})
	return mux
}

// allowGet rejects non-read methods with 405.
func allowGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}

// writeJSON renders v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("serve: encode: %v", err)
	}
}

// localTracer builds the serve-local tracer and flight recorder used by the
// single-platform and pool modes (a fabric controller owns its own pair).
// Tracing off (sample <= 0) yields nils; every downstream consumer is
// nil-safe, so the wrapped runner costs one pointer check per session.
func localTracer(now func() time.Duration, sample float64, slow time.Duration) (*flicker.Tracer, *flicker.TraceFlightRecorder) {
	if sample <= 0 {
		return nil, nil
	}
	tr := flicker.NewTracer("serve", now)
	tr.SetSampleRate(sample)
	rec := flicker.NewTraceFlightRecorder(0, 0, slow)
	tr.OnComplete(rec.Offer)
	return tr, rec
}

// traceRunOnce wraps a session runner with a sampled "serve.run" root span:
// the session observer stream hangs phase and TPM-command spans under it,
// and the completed trace lands in the flight recorder via the tracer's
// OnComplete sink.
func traceRunOnce(tracer *flicker.Tracer, palName string, run func(flicker.SessionOptions) error, opts flicker.SessionOptions) func() error {
	return func() error {
		root := tracer.StartSampled("serve.run")
		o := opts
		if root != nil {
			root.SetAttr("pal", palName)
			o.TraceID = root.TraceHex()
			o.Observer = flicker.NewSessionTraceObserver(root)
		}
		err := run(o)
		root.EndErr(err)
		return err
	}
}

// buildFabric stands up an in-process attestation fabric: a controller and
// n host agents on one simulated switch, every host quote-verified at
// admission, all folding into one metrics registry. A background ticker
// drives heartbeats and periodic re-attestation.
func buildFabric(n int, palName string, target flicker.PAL, prof *flicker.Profile, sample float64, slow time.Duration, batch int, batchWait time.Duration, window int) (*flicker.FabricController, *http.ServeMux, error) {
	reg := flicker.NewMetricsRegistry()
	events := flicker.NewSecurityEventLog(0)
	sw := flicker.NewNetSwitch(2*time.Millisecond, 0)
	sw.Instrument(reg, "fabric")
	ca, err := flicker.NewPrivacyCA([]byte("serve-fabric-ca"), 0)
	if err != nil {
		return nil, nil, err
	}
	ctrl, err := flicker.NewFabricController(sw, ca, flicker.FabricControllerConfig{
		Seed:          "serve-fabric",
		ReattestEvery: 30,
		Metrics:       reg,
		Events:        events,
		TraceSample:   sample,
		TraceSlow:     slow,
		MaxBatch:      batch,
		MaxWait:       batchWait,
		Window:        window,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := ctrl.RegisterPAL(target); err != nil {
		return nil, nil, err
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("host%d", i)
		h, err := flicker.NewFabricHost(sw, ca, flicker.FabricHostConfig{
			Name: name,
			Platform: flicker.Config{
				Seed: "serve-fabric|" + name, Profile: prof,
				Metrics: reg, Events: events,
			},
		})
		if err != nil {
			return nil, nil, err
		}
		if err := h.RegisterPAL(target); err != nil {
			return nil, nil, err
		}
		if err := ctrl.Admit(name); err != nil {
			return nil, nil, fmt.Errorf("admitting %s: %w", name, err)
		}
	}
	log.Printf("serve: fabric up: %d/%d hosts admitted for PAL %q", ctrl.Live(), n, palName)
	go func() {
		for range time.Tick(time.Second) {
			ctrl.Tick()
		}
	}()
	return ctrl, newFabricServeMux(ctrl, reg, events), nil
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9464", "listen address (use :0 for an ephemeral port)")
	palName := fs.String("pal", "hello", "demo PAL to run: hello, echo, seal")
	input := fs.String("input", "serve", "PAL input string")
	profile := fs.String("profile", "broadcom", "latency profile: broadcom, infineon, future")
	warm := fs.Int("sessions", 3, "sessions to run before serving (populates the metrics)")
	interval := fs.Duration("interval", 0, "keep running a session this often while serving (0 = only the warm-up sessions)")
	shards := fs.Int("shards", 1, "number of independent platforms behind a session pool (1 = single platform)")
	hosts := fs.Int("hosts", 0, "run an in-process attestation fabric of N quote-verified hosts (0 = no fabric; overrides -shards)")
	batch := fs.Int("batch", 1, "max requests coalesced into one session per shard (requires -shards mode; >1 enables the coalescer)")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "how long a shard holds a lone request hoping to form a batch")
	fabricBatch := fs.Int("fabric-batch", 0, "max same-PAL runs coalesced into one fabric wire frame (0 = singleton frames; requires -hosts)")
	fabricBatchWait := fs.Duration("fabric-batch-wait", time.Millisecond, "how long the controller holds a lone run hoping to form a wire frame")
	fabricWindow := fs.Int("fabric-window", 4, "max in-flight wire frames per fabric host (pipelining window)")
	traceSample := fs.Float64("trace-sample", 0, "fraction of sessions to trace end-to-end (0 = tracing off, 1 = every session)")
	traceSlow := fs.Duration("trace-slow", 0, "retain every sampled trace at least this slow in the flight recorder (0 = default threshold)")
	fs.Parse(args)

	prof, err := profileByName(*profile)
	if err != nil {
		log.Fatal(err)
	}
	target, err := demoPAL(*palName)
	if err != nil {
		log.Fatal(err)
	}
	nonce := flicker.SHA1Sum([]byte("serve-nonce"))
	opts := flicker.SessionOptions{Input: []byte(*input), Nonce: &nonce}
	if *batch > 1 {
		// A verifier nonce binds one attestation to one session, so nonce-
		// carrying requests are never coalesced; drop it in batch mode.
		opts.Nonce = nil
	}

	// Single-platform and sharded-pool modes expose the same endpoints;
	// sharded mode serves the shared registry all platforms fold into.
	var (
		runOnce func() error
		mux     *http.ServeMux
	)
	if *hosts > 0 {
		ctrl, mux2, err := buildFabric(*hosts, *palName, target, prof, *traceSample, *traceSlow, *fabricBatch, *fabricBatchWait, *fabricWindow)
		if err != nil {
			log.Fatal(err)
		}
		defer ctrl.Close()
		runOnce = func() error {
			_, err := ctrl.Run(*palName, []byte(*input))
			return err
		}
		mux = mux2
	} else if *shards > 1 || *batch > 1 {
		pool, err := flicker.NewPool(flicker.PoolConfig{
			Shards:   *shards,
			MaxBatch: *batch,
			MaxWait:  *batchWait,
			Platform: flicker.Config{Seed: "serve", Profile: prof},
		})
		if err != nil {
			log.Fatal(err)
		}
		tracer, rec := localTracer(pool.Shard(0).Clock.Now, *traceSample, *traceSlow)
		runOnce = traceRunOnce(tracer, *palName, func(o flicker.SessionOptions) error {
			res, err := pool.Run(target, o)
			if err != nil {
				return err
			}
			return res.PALError
		}, opts)
		mux = newPoolServeMux(pool, rec)
	} else {
		p, err := flicker.NewPlatform(flicker.Config{Seed: "serve", Profile: prof})
		if err != nil {
			log.Fatal(err)
		}
		tracer, rec := localTracer(p.Clock.Now, *traceSample, *traceSlow)
		runOnce = traceRunOnce(tracer, *palName, func(o flicker.SessionOptions) error {
			res, err := p.RunSession(target, o)
			if err != nil {
				return err
			}
			return res.PALError
		}, opts)
		mux = newServeMux(p, rec)
	}

	for i := 0; i < *warm; i++ {
		if err := runOnce(); err != nil {
			log.Fatalf("serve: warm-up session %d: %v", i+1, err)
		}
	}
	if *interval > 0 {
		// In batch mode the coalescer can only form groups from requests
		// that are in flight together, so submit concurrently (bounded)
		// instead of one blocking session per tick.
		inflight := make(chan struct{}, 2*(*batch))
		go func() {
			for range time.Tick(*interval) {
				if *batch > 1 {
					select {
					case inflight <- struct{}{}:
						go func() {
							defer func() { <-inflight }()
							if err := runOnce(); err != nil {
								log.Printf("serve: background session: %v", err)
							}
						}()
					default: // saturated: skip the tick rather than queue unboundedly
					}
					continue
				}
				if err := runOnce(); err != nil {
					log.Printf("serve: background session: %v", err)
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	traced := ""
	if *traceSample > 0 {
		traced = ", /traces + /traces/{id} (flight recorder)"
	}
	if *hosts > 0 {
		fmt.Printf("flicker serve: %d warm-up session(s) done on a %d-host fabric; listening on http://%s\n",
			*warm, *hosts, ln.Addr())
		fmt.Println("endpoints: /metrics (Prometheus), /stats (JSON), /events (JSON), /healthz, /hosts (attestation status)" + traced)
	} else {
		fmt.Printf("flicker serve: %d warm-up session(s) done on %d shard(s); listening on http://%s\n",
			*warm, *shards, ln.Addr())
		fmt.Println("endpoints: /metrics (Prometheus), /stats (JSON), /events (JSON), /healthz" + traced)
	}
	log.Fatal(http.Serve(ln, mux))
}
