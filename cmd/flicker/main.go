// Command flicker is the developer CLI for the Flicker platform simulation.
//
// Subcommands:
//
//	flicker run      — run a demo PAL in a Flicker session and print the
//	                   Figure 2 timeline and attestation values
//	flicker serve    — run sessions while exposing /metrics (Prometheus),
//	                   /stats (JSON), /events, and /healthz over HTTP
//	flicker modules  — print the PAL module inventory (Figure 6) and TCB sizes
//	flicker extract  — extract a function and its dependency closure from Go
//	                   source into a standalone PAL file (Section 5.2 tool)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"flicker"
	"flicker/internal/extract"
	"flicker/internal/pal"
	"flicker/internal/trace"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "modules":
		cmdModules()
	case "extract":
		cmdExtract(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flicker <run|serve|modules|extract> [flags]")
	os.Exit(2)
}

// profileByName resolves a latency-profile flag value.
func profileByName(name string) (*flicker.Profile, error) {
	switch name {
	case "broadcom":
		return flicker.ProfileBroadcom(), nil
	case "infineon":
		return flicker.ProfileInfineon(), nil
	case "future":
		return flicker.ProfileFuture(), nil
	default:
		return nil, fmt.Errorf("unknown profile %q", name)
	}
}

// demoPAL builds one of the CLI's demo PALs by name.
func demoPAL(name string) (flicker.PAL, error) {
	switch name {
	case "hello":
		return &flicker.PALFunc{
			PALName: "hello",
			Binary:  flicker.DescriptorCode("hello", "1.0", nil, nil),
			Fn: func(env *flicker.Env, in []byte) ([]byte, error) {
				return []byte("Hello, world"), nil
			},
		}, nil
	case "echo":
		return &flicker.PALFunc{
			PALName: "echo",
			Binary:  flicker.DescriptorCode("echo", "1.0", nil, nil),
			Fn: func(env *flicker.Env, in []byte) ([]byte, error) {
				return append([]byte("echo: "), in...), nil
			},
		}, nil
	case "seal":
		return &flicker.PALFunc{
			PALName: "seal",
			Binary:  flicker.DescriptorCode("seal", "1.0", []string{"TPM Driver", "TPM Utilities"}, nil),
			Fn: func(env *flicker.Env, in []byte) ([]byte, error) {
				blob, err := env.SealToSelf(in)
				if err != nil {
					return nil, err
				}
				back, err := env.Unseal(blob)
				if err != nil {
					return nil, err
				}
				return append([]byte("sealed+unsealed: "), back...), nil
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown PAL %q (want hello, echo, seal)", name)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	palName := fs.String("pal", "hello", "demo PAL: hello, echo, seal")
	input := fs.String("input", "", "PAL input string")
	profile := fs.String("profile", "broadcom", "latency profile: broadcom, infineon, future")
	sandbox := fs.Bool("sandbox", false, "link the OS Protection module (ring-3 PAL)")
	twoStage := fs.Bool("two-stage", false, "use the Section 7.2 optimized two-stage SLB")
	traceJSON := fs.String("trace-json", "", "write session spans as JSON to this file (\"-\" for stdout)")
	fs.Parse(args)

	prof, err := profileByName(*profile)
	if err != nil {
		log.Fatal(err)
	}
	p, err := flicker.NewPlatform(flicker.Config{Seed: "cli", Profile: prof})
	if err != nil {
		log.Fatal(err)
	}
	// -trace-json uses the same tracer/span format as the fabric and the
	// serve flight recorder, so the CLI output matches /traces/{id} exactly.
	var traced *flicker.TraceData
	var tracer *flicker.Tracer
	if *traceJSON != "" {
		tracer = flicker.NewTracer("cli", p.Clock.Now)
		tracer.OnComplete(func(td *flicker.TraceData) { traced = td })
	}

	target, err := demoPAL(*palName)
	if err != nil {
		log.Fatal(err)
	}

	nonce := flicker.SHA1Sum([]byte("cli-nonce"))
	opts := flicker.SessionOptions{
		Input:    []byte(*input),
		Nonce:    &nonce,
		Sandbox:  *sandbox,
		TwoStage: *twoStage,
	}
	root := tracer.Start("run")
	if root != nil {
		root.SetAttr("pal", *palName)
		opts.TraceID = root.TraceHex()
		opts.Observer = flicker.NewSessionTraceObserver(root)
	}
	res, err := p.RunSession(target, opts)
	if err != nil {
		log.Fatal(err)
	}
	root.EndErr(res.PALError)
	if res.PALError != nil {
		log.Fatalf("PAL error: %v", res.PALError)
	}
	// With -trace-json - the JSON owns stdout so it can be piped; the human
	// report moves to stderr.
	report := os.Stdout
	if *traceJSON == "-" {
		report = os.Stderr
	}
	fmt.Fprintf(report, "profile:  %s\n", prof.Name)
	fmt.Fprintf(report, "output:   %q\n", res.Outputs)
	fmt.Fprintf(report, "H(P):     %x\n", res.Measurement)
	fmt.Fprintf(report, "PCR17@0:  %x\n", res.PCR17AtLaunch)
	fmt.Fprintf(report, "PCR17@f:  %x\n", res.PCR17Final)
	fmt.Fprintln(report)
	fmt.Fprint(report, trace.RenderTimeline(res, 48))
	fmt.Fprintln(report)
	fmt.Fprint(report, trace.RenderCharges(p.Clock.ChargesSince(res.Start)))
	if traced != nil {
		raw, err := json.MarshalIndent(traceDetail{TraceData: traced, Tree: traced.Tree()}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		raw = append(raw, '\n')
		if *traceJSON == "-" {
			if _, err := os.Stdout.Write(raw); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := os.WriteFile(*traceJSON, raw, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nwrote trace %s to %s\n", traced.ID, *traceJSON)
		}
	}
}

func cmdModules() {
	fmt.Println("PAL module library (Figure 6):")
	fmt.Printf("  %-20s %6s %9s  %s\n", "module", "LoC", "size KB", "description")
	for _, m := range flicker.ModuleInventory() {
		mand := ""
		if m.Mandatory {
			mand = " (mandatory)"
		}
		fmt.Printf("  %-20s %6d %9.3f  %s%s\n", m.Name, m.LOC, m.SizeKB, m.Description, mand)
	}
	fmt.Println("\nTCB size for common configurations:")
	for _, cfg := range [][]string{
		nil,
		{"OS Protection"},
		{"TPM Driver", "TPM Utilities"},
		{"TPM Driver", "TPM Utilities", "Crypto", "Memory Management", "Secure Channel"},
	} {
		loc, kb, err := pal.TCBSize(cfg)
		if err != nil {
			log.Fatal(err)
		}
		label := "SLB Core only"
		if len(cfg) > 0 {
			label = "core + " + strings.Join(cfg, " + ")
		}
		fmt.Printf("  %-62s %5d LoC %8.3f KB\n", label, loc, kb)
	}
}

func cmdExtract(args []string) {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	target := fs.String("target", "", "function to extract (required)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *target == "" || fs.NArg() == 0 {
		log.Fatal("usage: flicker extract -target <func> [-o out.go] <files...>")
	}
	src := make(map[string]string)
	for _, f := range fs.Args() {
		b, err := os.ReadFile(f)
		if err != nil {
			log.Fatal(err)
		}
		src[f] = string(b)
	}
	res, err := extract.Extract(src, *target)
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(res.Source)
	} else if err := os.WriteFile(*out, res.Source, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "extracted %d declarations: %s\n",
		len(res.Included), strings.Join(res.Included, ", "))
	if len(res.External) > 0 {
		fmt.Fprintf(os.Stderr, "REPLACE OR ELIMINATE these external references (cf. printf/malloc in the paper):\n")
		for _, e := range res.External {
			fmt.Fprintf(os.Stderr, "  %s\n", e)
		}
	}
}
