// Command benchtables regenerates every table and figure of the paper's
// evaluation (Section 7) from the platform simulation and prints the
// paper's reported values next to the measured ones.
//
// Usage:
//
//	benchtables             # all experiments
//	benchtables -only t1    # one experiment: t1 t2 t3 t4 f6 f8 f9 ca 7.5 abl
//	benchtables -t3scale 1  # Table 3 at full scale (7:22 kernel build)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"flicker/internal/bench"
)

func main() {
	only := flag.String("only", "", "run a single experiment: t1,t2,t3,t4,f6,f8,f9,ca,7.5,abl,nextgen,multicore")
	t3scale := flag.Float64("t3scale", 1.0, "Table 3 build scale (1.0 = the paper's full 7:22.6 build)")
	flag.Parse()

	type experiment struct {
		key string
		run func() ([]*bench.Table, error)
	}
	experiments := []experiment{
		{"t1", wrap1(bench.Table1RootkitBreakdown)},
		{"t2", wrap1(bench.Table2SkinitVsSize)},
		{"t3", func() ([]*bench.Table, error) {
			t, err := bench.Table3SystemImpact(*t3scale)
			return []*bench.Table{t}, err
		}},
		{"t4", wrap1(bench.Table4DistcompOverhead)},
		{"f6", func() ([]*bench.Table, error) {
			return []*bench.Table{bench.Figure6Modules()}, nil
		}},
		{"f8", wrap1(bench.Figure8Efficiency)},
		{"f9", func() ([]*bench.Table, error) {
			a, b, err := bench.Figure9SSH()
			return []*bench.Table{a, b}, err
		}},
		{"ca", wrap1(bench.CASignLatency)},
		{"7.5", func() ([]*bench.Table, error) {
			t, err := bench.Sec75BlockDeviceIntegrity(16<<20, 5)
			return []*bench.Table{t}, err
		}},
		{"abl", wrap1(bench.AblationTPMProfiles)},
		{"nextgen", wrap1(bench.AblationNextGenSession)},
		{"multicore", wrap1(bench.AblationMulticoreImpact)},
	}

	fmt.Println("Flicker (EuroSys 2008) — evaluation reproduction")
	fmt.Println(strings.Repeat("=", 78))
	ran := 0
	for _, e := range experiments {
		if *only != "" && e.key != *only {
			continue
		}
		tables, err := e.run()
		if err != nil {
			log.Fatalf("experiment %s: %v", e.key, err)
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

func wrap1(f func() (*bench.Table, error)) func() ([]*bench.Table, error) {
	return func() ([]*bench.Table, error) {
		t, err := f()
		if err != nil {
			return nil, err
		}
		return []*bench.Table{t}, nil
	}
}
