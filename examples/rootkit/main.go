// Command rootkit demonstrates the paper's Section 6.1 application: a
// remote administrator runs a rootkit detector on a potentially compromised
// host and gets a guarantee — via attestation — that the genuine detector
// executed with Flicker protections and returned the true result.
//
// The demo queries a clean host, then installs a syscall-table rootkit and
// an inline kernel-text hook, queries again, and finally shows that a host
// which lies about the result is caught by the attestation.
package main

import (
	"fmt"
	"log"

	"flicker"
	"flicker/internal/apps/rootkit"
	"flicker/internal/core"
	"flicker/internal/netsim"
	"flicker/internal/simtime"
)

func bootHost(seed string) (*core.Platform, *rootkit.Host, *flicker.PrivacyCA) {
	p, err := flicker.NewPlatform(flicker.Config{Seed: seed, MemSize: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	// A realistic module load-out on the laptop.
	for _, m := range []struct {
		name string
		size int
	}{{"ext3", 96 * 1024}, {"e1000", 128 * 1024}, {"tpm_tis", 32 * 1024}} {
		if _, err := p.Kernel.LoadModule(m.name, m.size); err != nil {
			log.Fatal(err)
		}
	}
	ca, err := flicker.NewPrivacyCA([]byte("corp-privacy-ca"), 0)
	if err != nil {
		log.Fatal(err)
	}
	tqd, err := flicker.NewQuoteDaemon(p.OSTPM(), flicker.Digest{}, ca, "employee-laptop")
	if err != nil {
		log.Fatal(err)
	}
	return p, rootkit.NewHost(p, tqd), ca
}

func main() {
	p, host, ca := bootHost("rootkit-demo")
	// The admin derived the known-good hash from a golden image of the
	// fleet's kernel build (a twin platform here).
	gp, golden, _ := bootHost("rootkit-demo")
	_ = golden
	known, err := rootkit.KnownGoodFor(gp.Kernel)
	if err != nil {
		log.Fatal(err)
	}
	admin := rootkit.NewAdmin(ca.PublicKey(), []byte("admin"))
	admin.AddKnownGood(known)
	link := netsim.PaperLink(p.Clock) // 9.45 ms RTT, 12 hops away
	link.Instrument(p.Metrics, "admin")

	query := func(label string) *rootkit.Outcome {
		t0 := p.Clock.Now()
		out := admin.Query(link, host, p.Kernel.MeasurableRegions())
		fmt.Printf("%-34s verified=%-5v clean=%-5v latency=%7.1f ms\n",
			label, out.Verified, out.Clean, simtime.Millis(p.Clock.Now()-t0))
		if out.Err != nil {
			fmt.Printf("    verification error: %v\n", out.Err)
		}
		return out
	}

	fmt.Println("== Remote rootkit detection (Section 6.1) ==")
	query("clean kernel:")

	fmt.Println("\n-- adversary installs adore-ng style syscall hooks --")
	if err := p.Kernel.InstallRootkit("adore-ng", []int{2, 11, 39}); err != nil {
		log.Fatal(err)
	}
	query("hooked syscall table:")

	fmt.Println("\n-- adversary patches kernel text (inline hook) --")
	if err := p.Kernel.PatchKernelText(0x4242, []byte{0xE9, 0xDE, 0xAD, 0xBE}); err != nil {
		log.Fatal(err)
	}
	query("inline text hook:")

	fmt.Println("\n-- compromised host forges the report digest --")
	nonce := flicker.SHA1Sum([]byte("forged-query"))
	report, err := host.HandleQuery(p.Kernel.MeasurableRegions(), nonce)
	if err != nil {
		log.Fatal(err)
	}
	report.Digest = known // lie: claim the known-good hash
	out := admin.VerifyReport(report, nonce, p.Kernel.MeasurableRegions())
	fmt.Printf("%-34s verified=%-5v (%v)\n", "forged report:", out.Verified, out.Err)

	fmt.Println("\nThe attestation covers the detector's identity, the exact")
	fmt.Println("regions hashed, and the returned digest — the host cannot lie.")
}
