// Command distcomp demonstrates the paper's Section 6.2 application: a
// BOINC-style distributed-computing project whose clients run work units
// inside Flicker sessions, giving the server result integrity without
// redundant replication.
//
// The demo factors a number across several multi-session work units with
// sealed-key + HMAC state chaining, shows the server rejecting a tampered
// result, and prints the Table 4 / Figure 8 efficiency trade-off.
package main

import (
	"fmt"
	"log"
	"time"

	"flicker"
	"flicker/internal/apps/distcomp"
	"flicker/internal/simtime"
)

func main() {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "distcomp-demo"})
	if err != nil {
		log.Fatal(err)
	}
	ca, err := flicker.NewPrivacyCA([]byte("boinc-ca"), 0)
	if err != nil {
		log.Fatal(err)
	}
	tqd, err := flicker.NewQuoteDaemon(p.OSTPM(), flicker.Digest{}, ca, "volunteer-1")
	if err != nil {
		log.Fatal(err)
	}
	client := &distcomp.Client{P: p, TQD: tqd, Slice: 100 * time.Millisecond}

	// Factor 1234577 * 2 * 3 over [2, 60000) in units of 20000 candidates.
	const n = 1234577 * 6
	srv := distcomp.NewServer(n, 60000, 20000, ca.PublicKey())

	fmt.Printf("== Flicker-protected BOINC factoring of %d (Section 6.2) ==\n", n)
	units := 0
	for {
		unit, nonce, ok := srv.NextUnit()
		if !ok {
			break
		}
		res, err := client.ProcessUnit(unit, nonce)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Submit(res); err != nil {
			log.Fatal(err)
		}
		units++
		fmt.Printf("  unit %d: range [%d,%d) done in %d Flicker sessions\n",
			unit.UnitID, unit.Next, unit.Hi, res.Sessions)
	}
	fmt.Printf("accepted units: %d, divisors found: %v\n\n", units, srv.Divisors())

	// A malicious client tampers with a result.
	unit2, nonce2, _ := distcomp.NewServer(n, 20, 20, ca.PublicKey()).NextUnit()
	res, err := client.ProcessUnit(unit2, nonce2)
	if err != nil {
		log.Fatal(err)
	}
	res.LastOutput = append([]byte(nil), res.LastOutput...)
	res.LastOutput[len(res.LastOutput)-1] ^= 1
	if err := srv.Submit(res); err != nil {
		fmt.Printf("tampered result rejected by server: %v\n\n", err)
	}

	// Figure 8: efficiency vs replication.
	overhead := distcomp.SessionOverhead(p)
	fmt.Printf("== Figure 8: efficiency vs user latency (overhead %.1f ms/session) ==\n",
		simtime.Millis(overhead))
	fmt.Printf("%-12s %-10s %-8s %-8s %-8s\n", "latency", "Flicker", "3-way", "5-way", "7-way")
	for l := 1; l <= 10; l++ {
		lat := time.Duration(l) * time.Second
		fmt.Printf("%-12v %-10.2f %-8.2f %-8.2f %-8.2f\n", lat,
			distcomp.FlickerEfficiency(lat, overhead),
			distcomp.ReplicationEfficiency(3),
			distcomp.ReplicationEfficiency(5),
			distcomp.ReplicationEfficiency(7))
	}
	fmt.Println("\nWith a 2 s user latency, one Flicker client already beats")
	fmt.Println("3-way replication — without trusting the client's OS at all.")
}
