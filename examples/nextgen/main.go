// Command nextgen demonstrates the hardware extensions the paper
// anticipates in its concurrent recommendations work ([19], discussed in
// Section 7.5): multicore secure partitions that keep the OS running during
// a session, a hardware-protected PAL context store that replaces TPM
// sealed storage for checkpointing, and the resulting orders-of-magnitude
// overhead reduction.
package main

import (
	"fmt"
	"log"
	"time"

	"flicker"
	"flicker/internal/apps/distcomp"
	"flicker/internal/core"
	"flicker/internal/simtime"
)

func main() {
	fmt.Println("== Next-generation hardware extensions ([19]) ==")

	// --- 1. The 2008 baseline: checkpoint sessions pay ~920 ms each ---
	oldP, err := flicker.NewPlatform(flicker.Config{Seed: "nextgen-2008"})
	if err != nil {
		log.Fatal(err)
	}
	oldOverhead := measureCheckpointOverhead(oldP, false)
	fmt.Printf("2008 Broadcom platform, sealed-storage checkpoint: %8.3f ms/session\n",
		simtime.Millis(oldOverhead))

	// --- 2. Future hardware with the protected context store ---
	newP, err := flicker.NewPlatform(flicker.Config{
		Seed:    "nextgen-future",
		Profile: flicker.ProfileFuture(),
	})
	if err != nil {
		log.Fatal(err)
	}
	newOverhead := measureCheckpointOverhead(newP, true)
	fmt.Printf("future hardware, protected-context checkpoint:     %8.3f ms/session\n",
		simtime.Millis(newOverhead))
	fmt.Printf("end-to-end session speedup: %.0fx\n", float64(oldOverhead)/float64(newOverhead))
	fmt.Printf("checkpoint primitive speedup (unseal -> ctx fetch): %.0fx\n\n",
		float64(flicker.ProfileBroadcom().TPMUnseal)/float64(flicker.ProfileFuture().HWContextCost))

	// --- 3. Multicore partitioned launch: the OS never stops ---
	fmt.Println("-- partitioned launch: OS keeps working on the other core --")
	work := 2 * time.Second
	newP.Kernel.Spawn("background-build", work)
	before := newP.Clock.Now()
	hello := &flicker.PALFunc{
		PALName: "partitioned-hello",
		Binary:  flicker.DescriptorCode("partitioned-hello", "1.0", nil, nil),
		Fn: func(env *flicker.Env, in []byte) ([]byte, error) {
			env.ChargeCPU(simtime.Charge{Duration: work, Label: "app.work"})
			return []byte("done"), nil
		},
	}
	res, err := newP.RunSessionConcurrent(hello, flicker.SessionOptions{})
	if err != nil || res.PALError != nil {
		log.Fatalf("%v %v", err, res.PALError)
	}
	elapsed := newP.Clock.Now() - before
	left := len(newP.Kernel.Processes())
	fmt.Printf("2 s PAL session + 2 s of OS work finished in %.3f s of wall time\n",
		elapsed.Seconds())
	fmt.Printf("background processes still pending: %d (work overlapped the session)\n\n", left)

	// On 2008 hardware the same request is refused.
	if _, err := oldP.RunSessionConcurrent(hello, flicker.SessionOptions{}); err != nil {
		fmt.Printf("2008 hardware refuses partitioned launch: %v\n", err)
	}
}

// measureCheckpointOverhead runs an init + one minimal-work continuation
// session of the factoring PAL and returns the continuation's fixed cost.
func measureCheckpointOverhead(p *flicker.Platform, hwContext bool) time.Duration {
	unit := distcomp.State{UnitID: 1, N: 15, Next: 2, Hi: 1 << 62}
	initRes, err := p.RunSession(distcomp.NewFactorPAL(), core.SessionOptions{
		Input: distcomp.EncodeRequest(&distcomp.Request{
			Init: true, Unit: unit, UseHWContext: hwContext,
		}),
		TwoStage: true,
	})
	if err != nil || initRes.PALError != nil {
		log.Fatalf("init session: %v %v", err, initRes.PALError)
	}
	resp, err := distcomp.DecodeResponse(initRes.Outputs)
	if err != nil {
		log.Fatal(err)
	}
	contRes, err := p.RunSession(distcomp.NewFactorPAL(), core.SessionOptions{
		Input: distcomp.EncodeRequest(&distcomp.Request{
			SealedKey:    resp.SealedKey,
			Envelope:     resp.Envelope,
			WorkBudget:   time.Millisecond,
			UseHWContext: hwContext,
		}),
		TwoStage: true,
	})
	if err != nil || contRes.PALError != nil {
		log.Fatalf("continuation session: %v %v", err, contRes.PALError)
	}
	return contRes.Duration() - time.Millisecond
}
