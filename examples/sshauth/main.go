// Command sshauth demonstrates the paper's Section 6.3.1 application: SSH
// password authentication where the user's cleartext password exists on the
// server only inside a Flicker session, and the client can verify that this
// is enforced even against a compromised server OS.
//
// The demo walks the Figure 7 protocol: setup session (keypair generation +
// attestation), login session (unseal, decrypt, md5crypt), then the attack
// cases — wrong password, replayed ciphertext, and a server that substitutes
// its own key.
package main

import (
	"fmt"
	"log"

	"flicker"
	"flicker/internal/apps/sshauth"
	"flicker/internal/simtime"
)

func main() {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "ssh-demo"})
	if err != nil {
		log.Fatal(err)
	}
	ca, err := flicker.NewPrivacyCA([]byte("ssh-privacy-ca"), 0)
	if err != nil {
		log.Fatal(err)
	}
	tqd, err := flicker.NewQuoteDaemon(p.OSTPM(), flicker.Digest{}, ca, "ssh-server")
	if err != nil {
		log.Fatal(err)
	}
	srv := sshauth.NewServer(p, tqd)
	srv.AddUser("alice", "correct horse battery staple", "xK9v2mQp")
	client := sshauth.NewClient(ca.PublicKey(), []byte("laptop"))

	fmt.Println("== Flicker SSH password authentication (Section 6.3.1) ==")

	// --- First Flicker session: setup (Figure 9a) ---
	t0 := p.Clock.Now()
	clientNonce := client.FreshNonce()
	sr, err := srv.Setup(clientNonce)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.TrustSetup(sr, clientNonce); err != nil {
		log.Fatalf("client rejected setup: %v", err)
	}
	fmt.Printf("setup session + attestation: %.1f ms\n", simtime.Millis(p.Clock.Now()-t0))
	fmt.Printf("client verified K_PAL (%d-bit): private key exists ONLY in sealed storage\n\n",
		sr.KPAL.N.BitLen())

	// --- Second Flicker session: login (Figure 9b / Figure 7) ---
	login := func(label, password string, replayCT []byte) {
		nonce := srv.FreshNonce()
		ct := replayCT
		if ct == nil {
			var err error
			ct, err = client.Encrypt(password, nonce)
			if err != nil {
				log.Fatal(err)
			}
		}
		t0 := p.Clock.Now()
		err := srv.Login("alice", ct, nonce)
		ms := simtime.Millis(p.Clock.Now() - t0)
		if err != nil {
			fmt.Printf("%-28s DENIED  (%.1f ms): %v\n", label, ms, err)
		} else {
			fmt.Printf("%-28s GRANTED (%.1f ms)\n", label, ms)
		}
	}

	login("correct password:", "correct horse battery staple", nil)
	login("wrong password:", "hunter2", nil)

	// Replay: capture a ciphertext, replay under a new server nonce.
	n1 := srv.FreshNonce()
	captured, _ := client.Encrypt("correct horse battery staple", n1)
	srv.Login("alice", captured, n1)
	login("replayed ciphertext:", "", captured)

	// The compromised OS scans all physical memory for the password.
	mem, err := p.Machine.Mem.Read(0, p.Machine.Mem.Size())
	if err != nil {
		log.Fatal(err)
	}
	needle := []byte("correct horse battery staple")
	found := false
	for i := 0; i+len(needle) <= len(mem) && !found; i++ {
		j := 0
		for ; j < len(needle) && mem[i+j] == needle[j]; j++ {
		}
		found = j == len(needle)
	}
	fmt.Printf("\ncompromised OS scans RAM for the cleartext password: found=%v\n", found)
	fmt.Println("(the password existed only inside the Flicker session and was erased)")
}
