// Command quickstart is the "Hello, world" of Flicker (the paper's Figure
// 5): it boots a simulated platform, runs a minimal PAL inside a Flicker
// session, prints the session timeline, and then verifies an attestation of
// the session the way a remote party would.
package main

import (
	"fmt"
	"log"

	"flicker"
	"flicker/internal/simtime"
)

func main() {
	// Boot a simulated platform: TPM, SVM machine, untrusted kernel, and
	// the flicker-module (the paper's HP dc5750 with a Broadcom TPM).
	p, err := flicker.NewPlatform(flicker.Config{Seed: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}

	// Figure 5's PAL: ignore the inputs, output "Hello, world".
	hello := &flicker.PALFunc{
		PALName: "hello",
		Binary:  flicker.DescriptorCode("hello", "1.0", nil, nil),
		Fn: func(env *flicker.Env, input []byte) ([]byte, error) {
			return []byte("Hello, world"), nil
		},
	}

	// A remote verifier supplies a freshness nonce.
	nonce := flicker.SHA1Sum([]byte("verifier-challenge-1"))
	res, err := p.RunSession(hello, flicker.SessionOptions{Nonce: &nonce})
	if err != nil {
		log.Fatal(err)
	}
	if res.PALError != nil {
		log.Fatalf("PAL failed: %v", res.PALError)
	}
	fmt.Printf("PAL output: %q\n\n", res.Outputs)

	fmt.Println("Session timeline (Figure 2):")
	for _, ph := range res.Phases {
		fmt.Printf("  %-12s %10.3f ms\n", ph.Name, simtime.Millis(ph.Duration))
	}
	fmt.Printf("  %-12s %10.3f ms\n\n", "TOTAL", simtime.Millis(res.Duration()))

	// Attestation: the tqd (on the untrusted OS) quotes PCR 17; the
	// verifier recomputes the expected value from the PAL image and the
	// session parameters and checks the signature chain.
	ca, err := flicker.NewPrivacyCA([]byte("demo-privacy-ca"), 0)
	if err != nil {
		log.Fatal(err)
	}
	tqd, err := flicker.NewQuoteDaemon(p.OSTPM(), flicker.Digest{}, ca, "quickstart-host")
	if err != nil {
		log.Fatal(err)
	}
	att, err := tqd.Quote(nonce)
	if err != nil {
		log.Fatal(err)
	}
	img, err := flicker.BuildImage(hello, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.Patch(res.SLBBase); err != nil {
		log.Fatal(err)
	}
	if err := flicker.VerifySession(ca.PublicKey(), att, nonce, img, nil, res.Outputs); err != nil {
		log.Fatalf("attestation FAILED: %v", err)
	}
	fmt.Println("Attestation verified: the exact PAL above ran under Flicker")
	fmt.Printf("  PAL measurement H(P): %x\n", res.Measurement[:8])
	fmt.Printf("  PCR 17 at launch:     %x  (= H(0^20 || H(P)))\n", res.PCR17AtLaunch[:8])
	fmt.Printf("  PCR 17 final:         %x  (inputs, outputs, nonce, terminator)\n", res.PCR17Final[:8])

	loc, kb, _ := flicker.TCBSize(nil)
	fmt.Printf("\nTCB added by Flicker for this PAL: %d lines of code (%.3f KB)\n", loc, kb)
}
