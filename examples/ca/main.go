// Command ca demonstrates the paper's Section 6.3.2 application: a
// certificate authority whose private signing key is only ever available to
// a tiny PAL inside a Flicker session. The issuance policy is part of the
// PAL's measured identity, the certificate database lives in sealed
// storage, and mis-issued certificates can be revoked without rolling the
// CA key.
package main

import (
	"fmt"
	"log"

	"flicker"
	"flicker/internal/apps/ca"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
)

func main() {
	p, err := flicker.NewPlatform(flicker.Config{Seed: "ca-demo"})
	if err != nil {
		log.Fatal(err)
	}
	policy := &ca.Policy{AllowedSuffixes: []string{".corp.example"}, MaxCerts: 100}
	authority := ca.NewAuthority(p, policy)

	fmt.Println("== Flicker-enhanced Certificate Authority (Section 6.3.2) ==")
	t0 := p.Clock.Now()
	if err := authority.Init(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keygen session: %.1f ms — %d-bit key generated and sealed under PCR 17\n\n",
		simtime.Millis(p.Clock.Now()-t0), authority.PublicKey().N.BitLen())

	csr := func(subject string) *ca.CSR {
		key, _ := palcrypto.GenerateRSAKey(palcrypto.NewPRNG([]byte("req|"+subject)), 512)
		return &ca.CSR{Subject: subject, PublicKey: palcrypto.MarshalPublicKey(&key.RSAPublicKey)}
	}

	sign := func(subject string) *ca.Certificate {
		t0 := p.Clock.Now()
		cert, err := authority.Sign(csr(subject))
		ms := simtime.Millis(p.Clock.Now() - t0)
		if err != nil {
			fmt.Printf("CSR %-28s REJECTED (%.1f ms): %v\n", subject, ms, err)
			return nil
		}
		fmt.Printf("CSR %-28s issued serial %d (%.1f ms)\n", subject, cert.Serial, ms)
		return cert
	}

	mail := sign("mail.corp.example")
	sign("vpn.corp.example")
	sign("phishing.attacker.example") // policy rejects

	fmt.Println()
	if err := authority.Validate(mail); err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Printf("certificate %d validates against the CA public key\n", mail.Serial)

	// Mis-issued certificate: revoke it, no key rollover needed.
	authority.Revoke(mail.Serial)
	if err := authority.Validate(mail); err != nil {
		fmt.Printf("after revocation: %v\n", err)
	}
	fmt.Println("\nEven with the server OS fully compromised, the signing key")
	fmt.Println("was only ever readable inside the measured CA PAL; compromise")
	fmt.Println("recovery is certificate revocation, not CA key rollover.")
}
