// Package flicker is a Go reproduction of "Flicker: An Execution
// Infrastructure for TCB Minimization" (McCune, Parno, Perrig, Reiter,
// Isozaki — EuroSys 2008).
//
// Flicker executes security-sensitive code (a Piece of Application Logic,
// or PAL) in complete isolation from the OS, BIOS, devices and all other
// software, using AMD SVM's SKINIT late launch and a v1.2 TPM, while adding
// as few as 250 lines to the application's trusted computing base. This
// package and its internal subpackages implement the whole system as a
// deterministic platform simulation — the TPM, the SVM machine, the
// untrusted kernel, the flicker-module, the SLB layout, the PAL module
// library, attestation, and the paper's four applications — together with
// a calibrated latency model that regenerates every table and figure of
// the paper's evaluation.
//
// # Quick start
//
//	p, _ := flicker.NewPlatform(flicker.Config{})
//	hello := &flicker.PALFunc{
//		PALName: "hello",
//		Binary:  flicker.DescriptorCode("hello", "1.0", nil, nil),
//		Fn: func(env *flicker.Env, input []byte) ([]byte, error) {
//			return []byte("Hello, world"), nil
//		},
//	}
//	res, _ := p.RunSession(hello, flicker.SessionOptions{})
//	fmt.Println(string(res.Outputs))
//
// See the examples directory for attestation, sealed storage, and the
// rootkit-detector / distributed-computing / SSH / CA applications.
package flicker

import (
	"time"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/fabric"
	"flicker/internal/metrics"
	"flicker/internal/netsim"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/pool"
	"flicker/internal/simtime"
	"flicker/internal/slb"
	"flicker/internal/tpm"
	"flicker/internal/trace"
)

// Platform is a fully assembled simulated Flicker machine: TPM, CPU,
// physical memory, untrusted kernel, and the flicker-module.
type Platform = core.Platform

// Config describes a platform to construct.
type Config = core.PlatformConfig

// NewPlatform boots a simulated platform.
func NewPlatform(cfg Config) (*Platform, error) { return core.NewPlatform(cfg) }

// PAL is a Piece of Application Logic: the unit of code Flicker isolates.
type PAL = pal.PAL

// PALFunc adapts a Go function to the PAL interface.
type PALFunc = pal.Func

// Env is the execution environment a PAL sees inside a session.
type Env = pal.Env

// SessionOptions configures one Flicker session (inputs, verifier nonce,
// OS-protection sandbox, heap, two-stage measurement).
type SessionOptions = core.SessionOptions

// SessionResult describes a completed session: outputs, measurements,
// PCR-17 values, and the Figure 2 timeline.
type SessionResult = core.SessionResult

// BatchPAL is a PAL that can serve several requests inside ONE session:
// one SKINIT measurement, one Unseal at entry (OpenBatch), N request
// executions, one Seal at exit (CloseBatch). Plain PALs batch too via the
// per-request adapter — see AsBatchPAL.
type BatchPAL = pal.BatchPAL

// AsBatchPAL returns p itself if it implements BatchPAL, or a per-request
// adapter that runs p.Run once per batched request.
func AsBatchPAL(p PAL) BatchPAL { return pal.AsBatch(p) }

// Batch is a group of requests executed in one session.
type Batch = core.Batch

// BatchResult is the outcome of a batched session: the underlying session
// result plus one reply per completed request and the PAL's trailer.
type BatchResult = core.BatchResult

// BatchReply is one request's isolated outcome within a batch.
type BatchReply = pal.BatchReply

// DecodeBatchOutput splits a batched session's framed output page back into
// per-request replies and the trailer (for verifiers recomputing PCR-17
// over the session output).
func DecodeBatchOutput(b []byte) ([]BatchReply, []byte, error) {
	return core.DecodeBatchOutput(b)
}

// Observer receives structured session lifecycle events (session and phase
// boundaries, clock charges attributed to the open phase). Attach with
// Platform.AddObserver; internal/trace.Recorder is a ready-made JSON
// exporter.
type Observer = core.Observer

// SessionMeta identifies a session to observers.
type SessionMeta = core.SessionMeta

// SessionStats aggregates sessions run on a platform: counts, per-phase
// totals, and p50/max latency. Read with Platform.Stats().
type SessionStats = core.SessionStats

// MetricsRegistry is the platform-wide metrics registry (counters, gauges,
// latency histograms) every simulated layer reports into. Access it via
// Platform.Metrics; scrape with WritePrometheus or Snapshot.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time JSON-friendly view of a registry.
type MetricsSnapshot = metrics.Snapshot

// SecurityEventLog is the platform's bounded ring buffer of security-
// relevant events (DEV violations, PCR-17 resets, locality faults, session
// aborts). Access it via Platform.Events.
type SecurityEventLog = metrics.EventLog

// SecurityEvent is one entry in the security event log.
type SecurityEvent = metrics.Event

// ErrFaultInjected is returned by sessions aborted via
// SessionOptions.FailPhase fault injection.
var ErrFaultInjected = core.ErrFaultInjected

// Pool is a sharded session pool: N independent platforms behind one Run
// API with PAL-affinity routing, bounded queues with backpressure, and
// graceful drain on Close. All shards share one metrics registry and
// security event log.
type Pool = pool.Pool

// PoolConfig describes a session pool.
type PoolConfig = pool.Config

// PoolStats aggregates sessions across a pool's shards.
type PoolStats = pool.Stats

// NewPool boots a pool of cfg.Shards platforms.
func NewPool(cfg PoolConfig) (*Pool, error) { return pool.New(cfg) }

// ErrPoolClosed is returned by Pool.Run/TryRun after Close has begun.
var ErrPoolClosed = pool.ErrClosed

// ErrPoolSaturated is returned by Pool.TryRun when every shard queue is
// full.
var ErrPoolSaturated = pool.ErrSaturated

// DescriptorCode builds a deterministic PAL code identity from a name,
// version, module list, and embedded configuration.
func DescriptorCode(name, version string, modules []string, config []byte) []byte {
	return pal.DescriptorCode(name, version, modules, config)
}

// BuildImage builds the SLB image for a PAL (for computing expected
// measurements on the verifier side).
func BuildImage(p PAL, twoStage bool) (*SLBImage, error) { return core.BuildImage(p, twoStage) }

// SLBImage is a built Secure Loader Block.
type SLBImage = slb.Image

// Digest is a TPM measurement digest (SHA-1).
type Digest = tpm.Digest

// Profile is a hardware latency profile.
type Profile = simtime.Profile

// Latency profiles from the paper's evaluation.
var (
	// ProfileBroadcom models the HP dc5750 test machine with its Broadcom
	// BCM0102 TPM (the paper's primary numbers).
	ProfileBroadcom = simtime.ProfileBroadcom
	// ProfileInfineon models the faster Infineon TPM the paper cites.
	ProfileInfineon = simtime.ProfileInfineon
	// ProfileFuture models the hardware recommendations of the authors'
	// concurrent work ("up to six orders of magnitude" faster).
	ProfileFuture = simtime.ProfileFuture
)

// PrivacyCA certifies AIKs; remote verifiers trust its public key.
type PrivacyCA = attest.PrivacyCA

// NewPrivacyCA creates a Privacy CA (bits 0 = default key size).
func NewPrivacyCA(seed []byte, bits int) (*PrivacyCA, error) {
	return attest.NewPrivacyCA(seed, bits)
}

// QuoteDaemon is the tqd: the untrusted OS service that produces TPM quotes.
type QuoteDaemon = attest.Daemon

// NewQuoteDaemon generates and certifies an AIK for a platform and returns
// its quote daemon. Use Platform.OSTPM() for the client.
func NewQuoteDaemon(c *TPMClient, ownerAuth Digest, ca *PrivacyCA, platformID string) (*QuoteDaemon, error) {
	return attest.NewDaemon(c, ownerAuth, ca, platformID)
}

// TPMClient is a TPM driver bound to a locality.
type TPMClient = tpm.Client

// Attestation is a quote over PCR 17 plus the AIK certificate.
type Attestation = attest.Attestation

// VerifySession is the remote party's end-to-end check: it recomputes the
// expected final PCR-17 value for (image, input, output, nonce) and
// verifies the attestation against it.
func VerifySession(caPub *PublicKey, att *Attestation, nonce Digest, im *SLBImage, input, output []byte) error {
	return attest.VerifySession(caPub, att, nonce, im, input, output)
}

// ExpectedFinalPCR17 recomputes the PCR-17 value after a session.
func ExpectedFinalPCR17(im *SLBImage, input, output []byte, nonce *Digest) Digest {
	return attest.ExpectedFinalPCR17(im, input, output, nonce)
}

// PublicKey is an RSA public key from the PAL crypto library.
type PublicKey = palcrypto.RSAPublicKey

// PrivateKey is an RSA private key from the PAL crypto library.
type PrivateKey = palcrypto.RSAPrivateKey

// SHA1Sum computes a SHA-1 digest with the PAL crypto library.
func SHA1Sum(data []byte) Digest { return palcrypto.SHA1Sum(data) }

// ModuleInventory reproduces Figure 6: the PAL module library with its
// lines-of-code and size accounting.
func ModuleInventory() []pal.ModuleInfo { return pal.ModuleInventory() }

// TCBSize sums the TCB lines of code for a set of linked PAL modules.
func TCBSize(modules []string) (loc int, sizeKB float64, err error) {
	return pal.TCBSize(modules)
}

// --- attestation fabric ----------------------------------------------------

// NetSwitch is a simulated multi-endpoint network segment on its own
// deterministic clock: the medium a fabric controller and its host agents
// exchange framed RPC over.
type NetSwitch = netsim.Switch

// NewNetSwitch creates a switch with a uniform port-to-port RTT and
// optional per-byte serialization cost, on a fresh simulated clock.
func NewNetSwitch(rtt, perByte time.Duration) *NetSwitch {
	return netsim.NewSwitch(simtime.New(), rtt, perByte)
}

// FabricController admits host agents into a serving fleet via
// quote-verified attestation (a host joins only after a TPM Quote over the
// admission PAL's PCR-17 value verifies against the controller's own build
// of that PAL) and schedules sessions across the admitted members with
// PAL-affinity routing, failover, drain, and periodic re-attestation.
type FabricController = fabric.Controller

// FabricControllerConfig configures a fabric controller.
type FabricControllerConfig = fabric.ControllerConfig

// NewFabricController attaches a controller to a switch with the given
// Privacy CA as the attestation trust root.
func NewFabricController(sw *NetSwitch, ca *PrivacyCA, cfg FabricControllerConfig) (*FabricController, error) {
	return fabric.NewController(sw, ca, cfg)
}

// FabricHost is one fabric member: a platform pool plus a quote daemon,
// serving sessions over its switch port once admitted.
type FabricHost = fabric.Host

// FabricHostConfig configures a fabric host agent.
type FabricHostConfig = fabric.HostConfig

// NewFabricHost attaches a host agent to a switch.
func NewFabricHost(sw *NetSwitch, ca *PrivacyCA, cfg FabricHostConfig) (*FabricHost, error) {
	return fabric.NewHost(sw, ca, cfg)
}

// FabricStats is the controller's fleet-wide accounting snapshot.
type FabricStats = fabric.Stats

// FabricHostStatus is one member's externally visible admission state.
type FabricHostStatus = fabric.HostStatus

// ErrFabricNoHosts is returned by FabricController.Run when no admitted
// host can serve the requested PAL.
var ErrFabricNoHosts = fabric.ErrNoHosts

// NewMetricsRegistry creates an empty metrics registry, for wiring several
// components (fabric hosts, switches, controllers) into one scrape surface.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewSecurityEventLog creates a bounded security event log (n <= 0 uses
// the default capacity).
func NewSecurityEventLog(n int) *SecurityEventLog { return metrics.NewEventLog(n) }

// --- distributed tracing ---------------------------------------------------

// Tracer mints deterministic trace/span IDs for one site and assembles
// completed traces. FabricController owns one when
// FabricControllerConfig.TraceSample > 0; standalone platforms and pools can
// attach their own via NewTracer + NewSessionTraceObserver. A nil *Tracer is
// "tracing disabled": every method is a cheap no-op.
type Tracer = trace.Tracer

// TraceSpan is one open interval in a trace. All methods are nil-safe, so
// unsampled requests pay a single pointer check.
type TraceSpan = trace.Span

// TraceData is one completed trace: the root span plus every descendant
// record, including segments adopted from remote sites.
type TraceData = trace.TraceData

// TraceSpanRecord is the flat, wire-friendly form of one completed span.
type TraceSpanRecord = trace.SpanRecord

// TraceNode is one vertex of a reassembled trace tree (the /traces/{id}
// JSON shape).
type TraceNode = trace.TraceNode

// TraceFlightRecorder retains completed traces for postmortem reads: every
// trace matching a trigger (failover resubmits, re-attestation evictions,
// errors, slow outliers) plus a deterministic reservoir sample of the rest.
type TraceFlightRecorder = trace.FlightRecorder

// NewTracer creates a tracer for a site; now supplies its simulated
// timebase (e.g. Platform.Clock.Now).
func NewTracer(site string, now func() time.Duration) *Tracer {
	return trace.NewTracer(site, now)
}

// NewTraceFlightRecorder creates a flight recorder keeping up to trigCap
// triggered traces and a sampCap reservoir (non-positive caps use the
// default); traces at least slow long are retained as triggered.
func NewTraceFlightRecorder(trigCap, sampCap int, slow time.Duration) *TraceFlightRecorder {
	return trace.NewFlightRecorder(trigCap, sampCap, slow)
}

// NewSessionTraceObserver adapts the session observer stream into spans
// under the given parent spans (pass it via SessionOptions.Observer).
func NewSessionTraceObserver(parents ...*TraceSpan) Observer {
	return trace.NewSessionObserver(parents...)
}

// FormatTraceID renders a trace or span ID the canonical way every surface
// (exemplars, /traces, SessionOptions.TraceID) spells it.
func FormatTraceID(id uint64) string { return trace.FormatID(id) }
